/**
 * @file
 * Opcode set of the SASS-like SIMT ISA executed by the simulator.
 *
 * The ISA stands in for NVIDIA Tesla SASS that the paper's Barra-based
 * simulator executed (see docs/DESIGN.md, substitution table). Opcodes are
 * grouped by the execution-unit class that runs them on the SM
 * back-end: MAD (multiply-add / integer / control), SFU
 * (transcendental) and LSU (memory), matching Figure 1 of the paper.
 */

#ifndef SIWI_ISA_OPCODE_HH
#define SIWI_ISA_OPCODE_HH

#include <string_view>

#include "common/types.hh"

namespace siwi::isa {

/** Execution-unit class an instruction is issued to. */
enum class UnitClass : u8 {
    MAD, //!< multiply-add array; also integer, compare, select
    SFU, //!< special function unit (transcendentals)
    LSU, //!< load-store unit, single 128-byte L1 port
    CTRL //!< control flow; occupies the MAD issue path
};

/** Assembly operand shape, used by the (dis)assembler and validator. */
enum class OperandForm : u8 {
    None,     //!< no operands (NOP, BAR, EXIT)
    DstSaSb,  //!< rd, ra, rb|#imm
    DstSaSbSc,//!< rd, ra, rb, rc   (mad, sel)
    DstSa,    //!< rd, ra           (unary)
    DstImm,   //!< rd, #imm         (movi)
    DstSreg,  //!< rd, %sreg        (s2r)
    Load,     //!< rd, [ra+imm]
    Store,    //!< [ra+imm], rb
    Bra,      //!< L<target>
    CondBra,  //!< ra, L<target>
    Sync      //!< @L<divergence point>
};

/**
 * Instruction opcodes.
 *
 * Integer ops interpret registers as two's-complement i32; float ops
 * as IEEE binary32. Shifts use the low 5 bits of the shift amount.
 */
enum class Opcode : u8 {
    NOP,
    // --- MAD class: moves and integer arithmetic ---
    MOV, MOVI, S2R,
    IADD, ISUB, IMUL, IMAD, IMIN, IMAX, IABS,
    AND, OR, XOR, NOT, SHL, SHR, SRA,
    ISETLT, ISETLE, ISETEQ, ISETNE, ISETGE, ISETGT,
    SEL,
    // --- MAD class: float arithmetic ---
    FADD, FSUB, FMUL, FMAD, FMIN, FMAX, FABS, FNEG,
    FSETLT, FSETLE, FSETEQ, FSETNE, FSETGE, FSETGT,
    I2F, F2I,
    // --- SFU class ---
    RCP, RSQ, SQRT, SIN, COS, EXP2, LOG2,
    // --- LSU class ---
    LD, ST,
    // --- control ---
    BRA, BNZ, BZ, SYNC, BAR, EXIT,
    NumOpcodes
};

/** Number of opcodes, for table sizing and parameterized tests. */
constexpr unsigned num_opcodes = static_cast<unsigned>(Opcode::NumOpcodes);

/** Special (read-only) registers exposed through S2R. */
enum class SpecialReg : u8 {
    TID,    //!< thread index within the thread block
    NTID,   //!< threads per block
    CTAID,  //!< block index within the grid
    NCTAID, //!< blocks in the grid
    GTID,   //!< global thread index (ctaid * ntid + tid)
    LANE,   //!< physical lane within the warp (after lane shuffling)
    WID,    //!< hardware warp slot index
    NumSpecialRegs
};

constexpr unsigned num_special_regs =
    static_cast<unsigned>(SpecialReg::NumSpecialRegs);

/** Static properties of one opcode. */
struct OpInfo
{
    std::string_view name;  //!< lower-case mnemonic
    UnitClass unit;         //!< back-end unit class
    OperandForm form;       //!< assembly operand shape
    bool writes_dst;        //!< produces a destination register
};

/** Look up the static properties of @p op. */
const OpInfo &opInfo(Opcode op);

/** Mnemonic for @p op. */
std::string_view opName(Opcode op);

/** Parse a mnemonic; returns NumOpcodes when unknown. */
Opcode opFromName(std::string_view name);

/** Name of a special register (without the leading %). */
std::string_view sregName(SpecialReg sr);

/** Parse a special-register name; returns NumSpecialRegs if unknown. */
SpecialReg sregFromName(std::string_view name);

/** True for BRA/BNZ/BZ (PC-changing, potentially divergent for BNZ/BZ). */
bool isBranch(Opcode op);

/** True for BNZ/BZ: data-dependent, so potentially divergent. */
bool isCondBranch(Opcode op);

/** True for LD/ST. */
bool isMemory(Opcode op);

} // namespace siwi::isa

#endif // SIWI_ISA_OPCODE_HH
