#include "isa/opcode.hh"

#include <array>

#include "common/log.hh"

namespace siwi::isa {

namespace {

using UC = UnitClass;
using OF = OperandForm;

constexpr std::array<OpInfo, num_opcodes> op_table = {{
    {"nop",    UC::MAD,  OF::None,      false}, // NOP
    {"mov",    UC::MAD,  OF::DstSa,     true},  // MOV
    {"movi",   UC::MAD,  OF::DstImm,    true},  // MOVI
    {"s2r",    UC::MAD,  OF::DstSreg,   true},  // S2R
    {"iadd",   UC::MAD,  OF::DstSaSb,   true},  // IADD
    {"isub",   UC::MAD,  OF::DstSaSb,   true},  // ISUB
    {"imul",   UC::MAD,  OF::DstSaSb,   true},  // IMUL
    {"imad",   UC::MAD,  OF::DstSaSbSc, true},  // IMAD
    {"imin",   UC::MAD,  OF::DstSaSb,   true},  // IMIN
    {"imax",   UC::MAD,  OF::DstSaSb,   true},  // IMAX
    {"iabs",   UC::MAD,  OF::DstSa,     true},  // IABS
    {"and",    UC::MAD,  OF::DstSaSb,   true},  // AND
    {"or",     UC::MAD,  OF::DstSaSb,   true},  // OR
    {"xor",    UC::MAD,  OF::DstSaSb,   true},  // XOR
    {"not",    UC::MAD,  OF::DstSa,     true},  // NOT
    {"shl",    UC::MAD,  OF::DstSaSb,   true},  // SHL
    {"shr",    UC::MAD,  OF::DstSaSb,   true},  // SHR
    {"sra",    UC::MAD,  OF::DstSaSb,   true},  // SRA
    {"isetlt", UC::MAD,  OF::DstSaSb,   true},  // ISETLT
    {"isetle", UC::MAD,  OF::DstSaSb,   true},  // ISETLE
    {"iseteq", UC::MAD,  OF::DstSaSb,   true},  // ISETEQ
    {"isetne", UC::MAD,  OF::DstSaSb,   true},  // ISETNE
    {"isetge", UC::MAD,  OF::DstSaSb,   true},  // ISETGE
    {"isetgt", UC::MAD,  OF::DstSaSb,   true},  // ISETGT
    {"sel",    UC::MAD,  OF::DstSaSbSc, true},  // SEL
    {"fadd",   UC::MAD,  OF::DstSaSb,   true},  // FADD
    {"fsub",   UC::MAD,  OF::DstSaSb,   true},  // FSUB
    {"fmul",   UC::MAD,  OF::DstSaSb,   true},  // FMUL
    {"fmad",   UC::MAD,  OF::DstSaSbSc, true},  // FMAD
    {"fmin",   UC::MAD,  OF::DstSaSb,   true},  // FMIN
    {"fmax",   UC::MAD,  OF::DstSaSb,   true},  // FMAX
    {"fabs",   UC::MAD,  OF::DstSa,     true},  // FABS
    {"fneg",   UC::MAD,  OF::DstSa,     true},  // FNEG
    {"fsetlt", UC::MAD,  OF::DstSaSb,   true},  // FSETLT
    {"fsetle", UC::MAD,  OF::DstSaSb,   true},  // FSETLE
    {"fseteq", UC::MAD,  OF::DstSaSb,   true},  // FSETEQ
    {"fsetne", UC::MAD,  OF::DstSaSb,   true},  // FSETNE
    {"fsetge", UC::MAD,  OF::DstSaSb,   true},  // FSETGE
    {"fsetgt", UC::MAD,  OF::DstSaSb,   true},  // FSETGT
    {"i2f",    UC::MAD,  OF::DstSa,     true},  // I2F
    {"f2i",    UC::MAD,  OF::DstSa,     true},  // F2I
    {"rcp",    UC::SFU,  OF::DstSa,     true},  // RCP
    {"rsq",    UC::SFU,  OF::DstSa,     true},  // RSQ
    {"sqrt",   UC::SFU,  OF::DstSa,     true},  // SQRT
    {"sin",    UC::SFU,  OF::DstSa,     true},  // SIN
    {"cos",    UC::SFU,  OF::DstSa,     true},  // COS
    {"exp2",   UC::SFU,  OF::DstSa,     true},  // EXP2
    {"log2",   UC::SFU,  OF::DstSa,     true},  // LOG2
    {"ld",     UC::LSU,  OF::Load,      true},  // LD
    {"st",     UC::LSU,  OF::Store,     false}, // ST
    {"bra",    UC::CTRL, OF::Bra,       false}, // BRA
    {"bnz",    UC::CTRL, OF::CondBra,   false}, // BNZ
    {"bz",     UC::CTRL, OF::CondBra,   false}, // BZ
    {"sync",   UC::CTRL, OF::Sync,      false}, // SYNC
    {"bar",    UC::CTRL, OF::None,      false}, // BAR
    {"exit",   UC::CTRL, OF::None,      false}, // EXIT
}};

constexpr std::array<std::string_view, num_special_regs> sreg_names = {
    "tid", "ntid", "ctaid", "nctaid", "gtid", "lane", "wid",
};

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    siwi_assert(op < Opcode::NumOpcodes, "bad opcode");
    return op_table[static_cast<unsigned>(op)];
}

std::string_view
opName(Opcode op)
{
    return opInfo(op).name;
}

Opcode
opFromName(std::string_view name)
{
    for (unsigned i = 0; i < num_opcodes; ++i) {
        if (op_table[i].name == name)
            return static_cast<Opcode>(i);
    }
    return Opcode::NumOpcodes;
}

std::string_view
sregName(SpecialReg sr)
{
    siwi_assert(sr < SpecialReg::NumSpecialRegs, "bad sreg");
    return sreg_names[static_cast<unsigned>(sr)];
}

SpecialReg
sregFromName(std::string_view name)
{
    for (unsigned i = 0; i < num_special_regs; ++i) {
        if (sreg_names[i] == name)
            return static_cast<SpecialReg>(i);
    }
    return SpecialReg::NumSpecialRegs;
}

bool
isBranch(Opcode op)
{
    return op == Opcode::BRA || op == Opcode::BNZ || op == Opcode::BZ;
}

bool
isCondBranch(Opcode op)
{
    return op == Opcode::BNZ || op == Opcode::BZ;
}

bool
isMemory(Opcode op)
{
    return op == Opcode::LD || op == Opcode::ST;
}

} // namespace siwi::isa
