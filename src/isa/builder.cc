#include "isa/builder.hh"

#include <bit>

#include "common/log.hh"

namespace siwi::isa {

KernelBuilder::KernelBuilder(std::string name) : prog_(std::move(name))
{
}

Reg
KernelBuilder::reg()
{
    siwi_assert(next_reg_ < num_arch_regs,
                "out of architectural registers");
    return Reg{RegIdx(next_reg_++)};
}

Pc
KernelBuilder::emit(const Instruction &inst)
{
    siwi_assert(!built_, "KernelBuilder reused after build()");
    return prog_.push(inst);
}

Pc
KernelBuilder::emit2(Opcode op, Reg d, Reg a, Reg b)
{
    Instruction i;
    i.op = op;
    i.dst = d.idx;
    i.sa = a.idx;
    i.sb = b.idx;
    return emit(i);
}

Pc
KernelBuilder::emit2i(Opcode op, Reg d, Reg a, i32 imm)
{
    Instruction i;
    i.op = op;
    i.dst = d.idx;
    i.sa = a.idx;
    i.imm = imm;
    i.b_is_imm = true;
    return emit(i);
}

Pc
KernelBuilder::emit1(Opcode op, Reg d, Reg a)
{
    Instruction i;
    i.op = op;
    i.dst = d.idx;
    i.sa = a.idx;
    return emit(i);
}

Pc
KernelBuilder::nop()
{
    return emit(Instruction{});
}

Pc
KernelBuilder::mov(Reg d, Reg a)
{
    return emit1(Opcode::MOV, d, a);
}

Pc
KernelBuilder::movi(Reg d, i32 imm)
{
    Instruction i;
    i.op = Opcode::MOVI;
    i.dst = d.idx;
    i.imm = imm;
    i.b_is_imm = true;
    return emit(i);
}

Pc
KernelBuilder::fmovi(Reg d, float value)
{
    return movi(d, std::bit_cast<i32>(value));
}

Pc
KernelBuilder::s2r(Reg d, SpecialReg sr)
{
    Instruction i;
    i.op = Opcode::S2R;
    i.dst = d.idx;
    i.sreg = sr;
    return emit(i);
}

Pc KernelBuilder::iadd(Reg d, Reg a, Reg b)
{ return emit2(Opcode::IADD, d, a, b); }
Pc KernelBuilder::iadd(Reg d, Reg a, Imm b)
{ return emit2i(Opcode::IADD, d, a, b.v); }
Pc KernelBuilder::isub(Reg d, Reg a, Reg b)
{ return emit2(Opcode::ISUB, d, a, b); }
Pc KernelBuilder::isub(Reg d, Reg a, Imm b)
{ return emit2i(Opcode::ISUB, d, a, b.v); }
Pc KernelBuilder::imul(Reg d, Reg a, Reg b)
{ return emit2(Opcode::IMUL, d, a, b); }
Pc KernelBuilder::imul(Reg d, Reg a, Imm b)
{ return emit2i(Opcode::IMUL, d, a, b.v); }

Pc
KernelBuilder::imad(Reg d, Reg a, Reg b, Reg c)
{
    Instruction i;
    i.op = Opcode::IMAD;
    i.dst = d.idx;
    i.sa = a.idx;
    i.sb = b.idx;
    i.sc = c.idx;
    return emit(i);
}

Pc KernelBuilder::imin(Reg d, Reg a, Reg b)
{ return emit2(Opcode::IMIN, d, a, b); }
Pc KernelBuilder::imax(Reg d, Reg a, Reg b)
{ return emit2(Opcode::IMAX, d, a, b); }
Pc KernelBuilder::iabs(Reg d, Reg a)
{ return emit1(Opcode::IABS, d, a); }
Pc KernelBuilder::and_(Reg d, Reg a, Reg b)
{ return emit2(Opcode::AND, d, a, b); }
Pc KernelBuilder::and_(Reg d, Reg a, Imm b)
{ return emit2i(Opcode::AND, d, a, b.v); }
Pc KernelBuilder::or_(Reg d, Reg a, Reg b)
{ return emit2(Opcode::OR, d, a, b); }
Pc KernelBuilder::or_(Reg d, Reg a, Imm b)
{ return emit2i(Opcode::OR, d, a, b.v); }
Pc KernelBuilder::xor_(Reg d, Reg a, Reg b)
{ return emit2(Opcode::XOR, d, a, b); }
Pc KernelBuilder::xor_(Reg d, Reg a, Imm b)
{ return emit2i(Opcode::XOR, d, a, b.v); }
Pc KernelBuilder::not_(Reg d, Reg a)
{ return emit1(Opcode::NOT, d, a); }
Pc KernelBuilder::shl(Reg d, Reg a, Imm b)
{ return emit2i(Opcode::SHL, d, a, b.v); }
Pc KernelBuilder::shl(Reg d, Reg a, Reg b)
{ return emit2(Opcode::SHL, d, a, b); }
Pc KernelBuilder::shr(Reg d, Reg a, Imm b)
{ return emit2i(Opcode::SHR, d, a, b.v); }
Pc KernelBuilder::sra(Reg d, Reg a, Imm b)
{ return emit2i(Opcode::SRA, d, a, b.v); }

Pc KernelBuilder::isetlt(Reg d, Reg a, Reg b)
{ return emit2(Opcode::ISETLT, d, a, b); }
Pc KernelBuilder::isetlt(Reg d, Reg a, Imm b)
{ return emit2i(Opcode::ISETLT, d, a, b.v); }
Pc KernelBuilder::isetle(Reg d, Reg a, Reg b)
{ return emit2(Opcode::ISETLE, d, a, b); }
Pc KernelBuilder::isetle(Reg d, Reg a, Imm b)
{ return emit2i(Opcode::ISETLE, d, a, b.v); }
Pc KernelBuilder::iseteq(Reg d, Reg a, Reg b)
{ return emit2(Opcode::ISETEQ, d, a, b); }
Pc KernelBuilder::iseteq(Reg d, Reg a, Imm b)
{ return emit2i(Opcode::ISETEQ, d, a, b.v); }
Pc KernelBuilder::isetne(Reg d, Reg a, Reg b)
{ return emit2(Opcode::ISETNE, d, a, b); }
Pc KernelBuilder::isetne(Reg d, Reg a, Imm b)
{ return emit2i(Opcode::ISETNE, d, a, b.v); }
Pc KernelBuilder::isetge(Reg d, Reg a, Reg b)
{ return emit2(Opcode::ISETGE, d, a, b); }
Pc KernelBuilder::isetge(Reg d, Reg a, Imm b)
{ return emit2i(Opcode::ISETGE, d, a, b.v); }
Pc KernelBuilder::isetgt(Reg d, Reg a, Reg b)
{ return emit2(Opcode::ISETGT, d, a, b); }
Pc KernelBuilder::isetgt(Reg d, Reg a, Imm b)
{ return emit2i(Opcode::ISETGT, d, a, b.v); }

Pc
KernelBuilder::sel(Reg d, Reg cond, Reg t, Reg f)
{
    Instruction i;
    i.op = Opcode::SEL;
    i.dst = d.idx;
    i.sa = cond.idx;
    i.sb = t.idx;
    i.sc = f.idx;
    return emit(i);
}

Pc KernelBuilder::fadd(Reg d, Reg a, Reg b)
{ return emit2(Opcode::FADD, d, a, b); }
Pc KernelBuilder::fsub(Reg d, Reg a, Reg b)
{ return emit2(Opcode::FSUB, d, a, b); }
Pc KernelBuilder::fmul(Reg d, Reg a, Reg b)
{ return emit2(Opcode::FMUL, d, a, b); }

Pc
KernelBuilder::fmad(Reg d, Reg a, Reg b, Reg c)
{
    Instruction i;
    i.op = Opcode::FMAD;
    i.dst = d.idx;
    i.sa = a.idx;
    i.sb = b.idx;
    i.sc = c.idx;
    return emit(i);
}

Pc KernelBuilder::fmin(Reg d, Reg a, Reg b)
{ return emit2(Opcode::FMIN, d, a, b); }
Pc KernelBuilder::fmax(Reg d, Reg a, Reg b)
{ return emit2(Opcode::FMAX, d, a, b); }
Pc KernelBuilder::fabs_(Reg d, Reg a)
{ return emit1(Opcode::FABS, d, a); }
Pc KernelBuilder::fneg(Reg d, Reg a)
{ return emit1(Opcode::FNEG, d, a); }
Pc KernelBuilder::fsetlt(Reg d, Reg a, Reg b)
{ return emit2(Opcode::FSETLT, d, a, b); }
Pc KernelBuilder::fsetle(Reg d, Reg a, Reg b)
{ return emit2(Opcode::FSETLE, d, a, b); }
Pc KernelBuilder::fseteq(Reg d, Reg a, Reg b)
{ return emit2(Opcode::FSETEQ, d, a, b); }
Pc KernelBuilder::fsetgt(Reg d, Reg a, Reg b)
{ return emit2(Opcode::FSETGT, d, a, b); }
Pc KernelBuilder::fsetge(Reg d, Reg a, Reg b)
{ return emit2(Opcode::FSETGE, d, a, b); }
Pc KernelBuilder::i2f(Reg d, Reg a)
{ return emit1(Opcode::I2F, d, a); }
Pc KernelBuilder::f2i(Reg d, Reg a)
{ return emit1(Opcode::F2I, d, a); }

Pc KernelBuilder::rcp(Reg d, Reg a) { return emit1(Opcode::RCP, d, a); }
Pc KernelBuilder::rsq(Reg d, Reg a) { return emit1(Opcode::RSQ, d, a); }
Pc KernelBuilder::sqrt_(Reg d, Reg a)
{ return emit1(Opcode::SQRT, d, a); }
Pc KernelBuilder::sin_(Reg d, Reg a) { return emit1(Opcode::SIN, d, a); }
Pc KernelBuilder::cos_(Reg d, Reg a) { return emit1(Opcode::COS, d, a); }
Pc KernelBuilder::exp2_(Reg d, Reg a)
{ return emit1(Opcode::EXP2, d, a); }
Pc KernelBuilder::log2_(Reg d, Reg a)
{ return emit1(Opcode::LOG2, d, a); }

Pc
KernelBuilder::ld(Reg d, Reg addr, i32 offset)
{
    Instruction i;
    i.op = Opcode::LD;
    i.dst = d.idx;
    i.sa = addr.idx;
    i.imm = offset;
    return emit(i);
}

Pc
KernelBuilder::st(Reg addr, i32 offset, Reg value)
{
    Instruction i;
    i.op = Opcode::ST;
    i.sa = addr.idx;
    i.sb = value.idx;
    i.imm = offset;
    return emit(i);
}

Pc
KernelBuilder::bar()
{
    Instruction i;
    i.op = Opcode::BAR;
    return emit(i);
}

Pc
KernelBuilder::exit_()
{
    Instruction i;
    i.op = Opcode::EXIT;
    return emit(i);
}

Label
KernelBuilder::label()
{
    labels_.push_back(LabelInfo{});
    return Label{u32(labels_.size() - 1)};
}

void
KernelBuilder::bind(Label l)
{
    siwi_assert(l.id < labels_.size(), "unknown label");
    siwi_assert(labels_[l.id].bound == invalid_pc,
                "label bound twice");
    labels_[l.id].bound = here();
}

Pc
KernelBuilder::branchTo(Opcode op, Reg cond, Label l)
{
    siwi_assert(l.id < labels_.size(), "unknown label");
    Instruction i;
    i.op = op;
    i.sa = cond.idx;
    i.target = invalid_pc;
    Pc pc = emit(i);
    labels_[l.id].uses.push_back(pc);
    return pc;
}

Pc
KernelBuilder::bra(Label l)
{
    return branchTo(Opcode::BRA, Reg{0}, l);
}

Pc
KernelBuilder::bnz(Reg cond, Label l)
{
    return branchTo(Opcode::BNZ, cond, l);
}

Pc
KernelBuilder::bz(Reg cond, Label l)
{
    return branchTo(Opcode::BZ, cond, l);
}

void
KernelBuilder::if_(Reg cond)
{
    Frame f;
    f.kind = FrameKind::If;
    f.a = label();
    f.b = label();
    // Skip the then-block when the condition is false.
    bz(cond, f.a);
    frames_.push_back(f);
}

void
KernelBuilder::ifz(Reg cond)
{
    Frame f;
    f.kind = FrameKind::If;
    f.a = label();
    f.b = label();
    bnz(cond, f.a);
    frames_.push_back(f);
}

void
KernelBuilder::else_()
{
    siwi_assert(!frames_.empty() &&
                frames_.back().kind == FrameKind::If,
                "else_ without if_");
    Frame &f = frames_.back();
    bra(f.b);
    bind(f.a);
    f.kind = FrameKind::IfElse;
}

void
KernelBuilder::endIf()
{
    siwi_assert(!frames_.empty(), "endIf without if_");
    Frame f = frames_.back();
    frames_.pop_back();
    if (f.kind == FrameKind::If) {
        // No else block: both the else-label and the end-label land
        // here.
        bind(f.a);
        bind(f.b);
    } else {
        siwi_assert(f.kind == FrameKind::IfElse, "endIf inside loop");
        bind(f.b);
    }
}

void
KernelBuilder::loop()
{
    Frame f;
    f.kind = FrameKind::Loop;
    f.a = label(); // loop start
    f.b = label(); // loop end (break target)
    bind(f.a);
    frames_.push_back(f);
}

void
KernelBuilder::endLoopIf(Reg cond)
{
    siwi_assert(!frames_.empty() &&
                frames_.back().kind == FrameKind::Loop,
                "endLoopIf without loop");
    Frame f = frames_.back();
    frames_.pop_back();
    bnz(cond, f.a);
    bind(f.b);
}

void
KernelBuilder::endLoopIfz(Reg cond)
{
    siwi_assert(!frames_.empty() &&
                frames_.back().kind == FrameKind::Loop,
                "endLoopIfz without loop");
    Frame f = frames_.back();
    frames_.pop_back();
    bz(cond, f.a);
    bind(f.b);
}

void
KernelBuilder::breakIf(Reg cond)
{
    siwi_assert(!frames_.empty(), "breakIf outside loop");
    // Find innermost loop frame.
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
        if (it->kind == FrameKind::Loop) {
            bnz(cond, it->b);
            return;
        }
    }
    panic("breakIf outside loop");
}

void
KernelBuilder::breakIfz(Reg cond)
{
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
        if (it->kind == FrameKind::Loop) {
            bz(cond, it->b);
            return;
        }
    }
    panic("breakIfz outside loop");
}

void
KernelBuilder::continueIf(Reg cond)
{
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
        if (it->kind == FrameKind::Loop) {
            bnz(cond, it->a);
            return;
        }
    }
    panic("continueIf outside loop");
}

Program
KernelBuilder::build()
{
    siwi_assert(!built_, "build() called twice");
    siwi_assert(frames_.empty(), "unclosed control-flow construct");

    if (prog_.empty() || prog_.code().back().op != Opcode::EXIT)
        exit_();

    for (const LabelInfo &li : labels_) {
        if (li.uses.empty())
            continue;
        siwi_assert(li.bound != invalid_pc, "unbound label used");
        for (Pc use : li.uses)
            prog_.at(use).target = li.bound;
    }

    std::string err = prog_.validate();
    siwi_assert(err.empty(), "invalid program '", prog_.name(),
                "': ", err);
    built_ = true;
    return std::move(prog_);
}

} // namespace siwi::isa
