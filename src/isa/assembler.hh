/**
 * @file
 * Text assembler for the SIMT ISA.
 *
 * Accepts the syntax produced by Program::disassemble(), so
 * assemble(disassemble(p)) round-trips. Kernels can also be written
 * by hand (see the custom_assembly example).
 */

#ifndef SIWI_ISA_ASSEMBLER_HH
#define SIWI_ISA_ASSEMBLER_HH

#include <string>
#include <string_view>

#include "isa/program.hh"

namespace siwi::isa {

/** Result of assembling a source string. */
struct AsmResult
{
    Program program;   //!< valid only when ok() is true
    std::string error; //!< empty on success, else "line N: message"

    bool ok() const { return error.empty(); }
};

/**
 * Assemble ISA source text.
 *
 * Syntax (one instruction per line):
 *   .kernel name              -- optional kernel name directive
 *   label:                    -- any identifier, or Lnn
 *   iadd r3, r1, #5           -- '#' marks immediates
 *   ld r4, [r2+16]
 *   st [r2+0], r5
 *   s2r r0, %gtid
 *   bnz r1, loop_top          -- optional ", !rlabel" reconv annot.
 *   sync @Ldiv                -- divergence-point payload
 *   ; comment  or  // comment
 */
AsmResult assemble(std::string_view source);

} // namespace siwi::isa

#endif // SIWI_ISA_ASSEMBLER_HH
