/**
 * @file
 * A single decoded instruction of the SIMT ISA.
 */

#ifndef SIWI_ISA_INSTRUCTION_HH
#define SIWI_ISA_INSTRUCTION_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/opcode.hh"

namespace siwi::isa {

/**
 * One decoded instruction.
 *
 * A flat POD covering every operand form. Branches carry two PC
 * annotations filled by the compiler passes:
 *  - @ref reconv : the reconvergence point (immediate post-dominator),
 *    consumed by the baseline divergence stack exactly like Tesla's
 *    SSY marker;
 *  - SYNC instructions carry @ref div : the divergence point PCdiv
 *    (last instruction of the immediate dominator of the
 *    reconvergence point), the payload of the paper's selective
 *    synchronization barrier (section 3.3).
 */
struct Instruction
{
    Opcode op = Opcode::NOP;

    RegIdx dst = 0; //!< destination register
    RegIdx sa = 0;  //!< first source register (also address base / cond)
    RegIdx sb = 0;  //!< second source register (also store value)
    RegIdx sc = 0;  //!< third source register (mad addend, sel false-val)

    i32 imm = 0;          //!< immediate operand / memory offset
    bool b_is_imm = false;//!< second operand is @ref imm, not @ref sb

    SpecialReg sreg = SpecialReg::TID; //!< S2R source

    Pc target = invalid_pc; //!< branch target
    Pc reconv = invalid_pc; //!< reconvergence point (cond branches)
    Pc div = invalid_pc;    //!< SYNC payload: divergence point PCdiv

    /** Unit class this instruction is issued to. */
    UnitClass unit() const { return opInfo(op).unit; }

    /** True when a destination register is written. */
    bool writesDst() const { return opInfo(op).writes_dst; }

    /** Source registers actually read, for scoreboard comparison. */
    std::vector<RegIdx> srcRegs() const;

    /** Render in the assembler syntax (without label prefix). */
    std::string toString() const;
};

} // namespace siwi::isa

#endif // SIWI_ISA_INSTRUCTION_HH
