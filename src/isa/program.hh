/**
 * @file
 * Program: the executable unit loaded onto the simulated SM.
 */

#ifndef SIWI_ISA_PROGRAM_HH
#define SIWI_ISA_PROGRAM_HH

#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace siwi::isa {

/**
 * A kernel binary: a linear sequence of instructions, entry at PC 0.
 *
 * PCs are instruction indices (the paper numbers instructions the
 * same way in Figure 2). Programs produced by the KernelBuilder are
 * normally post-processed by cfg::compileKernel, which lays blocks
 * out in thread-frontier order and inserts SYNC reconvergence
 * markers.
 */
class Program
{
  public:
    Program() = default;
    explicit Program(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    /** Number of instructions. */
    Pc size() const { return Pc(code_.size()); }
    bool empty() const { return code_.empty(); }

    const Instruction &at(Pc pc) const;
    Instruction &at(Pc pc);

    /** Append an instruction; returns its PC. */
    Pc push(const Instruction &inst);

    const std::vector<Instruction> &code() const { return code_; }
    std::vector<Instruction> &code() { return code_; }

    /** Highest register index referenced, plus one. */
    unsigned regsUsed() const;

    /**
     * Structural validation: branch targets in range, terminating
     * EXIT reachable, operand registers in range.
     * @return empty string if valid, else a diagnostic.
     */
    std::string validate() const;

    /** Disassemble to re-assemblable text (with Lpc: labels). */
    std::string disassemble() const;

  private:
    std::string name_;
    std::vector<Instruction> code_;
};

} // namespace siwi::isa

#endif // SIWI_ISA_PROGRAM_HH
