#include "isa/program.hh"

#include <set>
#include <sstream>

#include "common/log.hh"

namespace siwi::isa {

const Instruction &
Program::at(Pc pc) const
{
    siwi_assert(pc < code_.size(), "pc out of range: ", pc);
    return code_[pc];
}

Instruction &
Program::at(Pc pc)
{
    siwi_assert(pc < code_.size(), "pc out of range: ", pc);
    return code_[pc];
}

Pc
Program::push(const Instruction &inst)
{
    code_.push_back(inst);
    return Pc(code_.size() - 1);
}

unsigned
Program::regsUsed() const
{
    unsigned hi = 0;
    for (const auto &inst : code_) {
        if (inst.writesDst())
            hi = std::max(hi, unsigned(inst.dst) + 1);
        for (RegIdx r : inst.srcRegs())
            hi = std::max(hi, unsigned(r) + 1);
    }
    return hi;
}

std::string
Program::validate() const
{
    std::ostringstream err;
    if (code_.empty())
        return "empty program";

    bool has_exit = false;
    for (Pc pc = 0; pc < size(); ++pc) {
        const Instruction &inst = code_[pc];
        if (inst.op >= Opcode::NumOpcodes) {
            err << "pc " << pc << ": invalid opcode";
            return err.str();
        }
        if (isBranch(inst.op) && inst.target >= size()) {
            err << "pc " << pc << ": branch target " << inst.target
                << " out of range";
            return err.str();
        }
        if (inst.op == Opcode::SYNC && inst.div != invalid_pc &&
            inst.div >= size()) {
            err << "pc " << pc << ": sync divergence point " << inst.div
                << " out of range";
            return err.str();
        }
        if (inst.writesDst() && inst.dst >= num_arch_regs) {
            err << "pc " << pc << ": dst register out of range";
            return err.str();
        }
        for (RegIdx r : inst.srcRegs()) {
            if (r >= num_arch_regs) {
                err << "pc " << pc << ": src register out of range";
                return err.str();
            }
        }
        if (inst.op == Opcode::EXIT)
            has_exit = true;
    }
    // Falling off the end is a kernel bug; require the last
    // instruction to be an unconditional control transfer or an EXIT
    // somewhere in the program plus a terminal EXIT/BRA.
    const Instruction &last = code_.back();
    if (!has_exit)
        return "program has no EXIT";
    if (last.op != Opcode::EXIT && last.op != Opcode::BRA)
        return "program does not end with EXIT or BRA";
    return "";
}

std::string
Program::disassemble() const
{
    // Collect label targets so only referenced PCs get labels.
    std::set<Pc> targets;
    for (const auto &inst : code_) {
        if (isBranch(inst.op))
            targets.insert(inst.target);
        if (isCondBranch(inst.op) && inst.reconv != invalid_pc)
            targets.insert(inst.reconv);
        if (inst.op == Opcode::SYNC && inst.div != invalid_pc)
            targets.insert(inst.div);
    }

    std::ostringstream os;
    os << ".kernel " << (name_.empty() ? "anonymous" : name_) << "\n";
    for (Pc pc = 0; pc < size(); ++pc) {
        if (targets.count(pc))
            os << "L" << pc << ":\n";
        os << "    " << code_[pc].toString() << "\n";
    }
    return os.str();
}

} // namespace siwi::isa
