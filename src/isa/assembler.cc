#include "isa/assembler.hh"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

namespace siwi::isa {

namespace {

/** Cursor over one source line with error reporting. */
class LineParser
{
  public:
    explicit LineParser(std::string_view s) : s_(s) {}

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool
    atEnd()
    {
        skipWs();
        return pos_ >= s_.size();
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    /** Parse an identifier [A-Za-z_][A-Za-z0-9_]*. */
    std::string
    ident()
    {
        skipWs();
        std::string out;
        if (pos_ < s_.size() &&
            (std::isalpha(static_cast<unsigned char>(s_[pos_])) ||
             s_[pos_] == '_')) {
            while (pos_ < s_.size() &&
                   (std::isalnum(
                        static_cast<unsigned char>(s_[pos_])) ||
                    s_[pos_] == '_')) {
                out.push_back(s_[pos_++]);
            }
        }
        return out;
    }

    /** Parse a signed decimal or 0x hex integer. */
    bool
    integer(i64 &out)
    {
        skipWs();
        size_t start = pos_;
        bool neg = false;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) {
            neg = s_[pos_] == '-';
            ++pos_;
        }
        u64 val = 0;
        bool any = false;
        if (pos_ + 1 < s_.size() && s_[pos_] == '0' &&
            (s_[pos_ + 1] == 'x' || s_[pos_ + 1] == 'X')) {
            pos_ += 2;
            while (pos_ < s_.size() &&
                   std::isxdigit(
                       static_cast<unsigned char>(s_[pos_]))) {
                char c = s_[pos_++];
                u64 d = std::isdigit(static_cast<unsigned char>(c))
                            ? u64(c - '0')
                            : u64(std::tolower(c) - 'a' + 10);
                val = val * 16 + d;
                any = true;
            }
        } else {
            while (pos_ < s_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(s_[pos_]))) {
                val = val * 10 + u64(s_[pos_++] - '0');
                any = true;
            }
        }
        if (!any) {
            pos_ = start;
            return false;
        }
        out = neg ? -i64(val) : i64(val);
        return true;
    }

    /** Parse a register operand rN. */
    bool
    regOperand(RegIdx &out)
    {
        skipWs();
        size_t start = pos_;
        if (pos_ < s_.size() && (s_[pos_] == 'r' || s_[pos_] == 'R')) {
            ++pos_;
            i64 n;
            if (integer(n) && n >= 0 && n < i64(num_arch_regs)) {
                out = RegIdx(n);
                return true;
            }
        }
        pos_ = start;
        return false;
    }

    size_t pos() const { return pos_; }

  private:
    std::string_view s_;
    size_t pos_ = 0;
};

struct PendingRef
{
    Pc pc;            //!< instruction to patch
    std::string name; //!< label name
    int line;         //!< source line for diagnostics
    enum class Field { Target, Reconv, Div } field;
};

std::string_view
stripComment(std::string_view line)
{
    size_t best = line.size();
    size_t semi = line.find(';');
    if (semi != std::string_view::npos)
        best = std::min(best, semi);
    size_t slashes = line.find("//");
    if (slashes != std::string_view::npos)
        best = std::min(best, slashes);
    return line.substr(0, best);
}

} // namespace

AsmResult
assemble(std::string_view source)
{
    AsmResult res;
    Program prog;
    std::map<std::string, Pc> labels;
    std::vector<PendingRef> refs;

    auto fail = [&](int line, const std::string &msg) {
        std::ostringstream os;
        os << "line " << line << ": " << msg;
        res.error = os.str();
        return res;
    };

    std::istringstream in{std::string(source)};
    std::string raw;
    int lineno = 0;
    while (std::getline(in, raw)) {
        ++lineno;
        std::string_view line = stripComment(raw);
        LineParser p(line);
        if (p.atEnd())
            continue;

        // Directive?
        if (p.consume('.')) {
            std::string dir = p.ident();
            if (dir == "kernel") {
                p.skipWs();
                std::string name = p.ident();
                prog.setName(name);
                continue;
            }
            return fail(lineno, "unknown directive ." + dir);
        }

        std::string word = p.ident();
        if (word.empty())
            return fail(lineno, "expected mnemonic or label");

        // Label definition?
        if (p.consume(':')) {
            if (labels.count(word))
                return fail(lineno, "label redefined: " + word);
            labels[word] = prog.size();
            if (p.atEnd())
                continue;
            word = p.ident();
            if (word.empty())
                return fail(lineno, "expected mnemonic after label");
        }

        Opcode op = opFromName(word);
        if (op == Opcode::NumOpcodes)
            return fail(lineno, "unknown mnemonic: " + word);

        Instruction inst;
        inst.op = op;
        const OpInfo &info = opInfo(op);

        auto parseReg = [&](RegIdx &r) {
            return p.regOperand(r);
        };
        auto expectComma = [&]() { return p.consume(','); };

        auto parseLabelRef = [&](PendingRef::Field field) -> bool {
            p.skipWs();
            std::string name = p.ident();
            if (name.empty())
                return false;
            refs.push_back({prog.size(), name, lineno, field});
            return true;
        };

        switch (info.form) {
          case OperandForm::None:
            break;
          case OperandForm::DstSa:
            if (!parseReg(inst.dst) || !expectComma() ||
                !parseReg(inst.sa))
                return fail(lineno, "expected 'rd, ra'");
            break;
          case OperandForm::DstSaSb: {
            if (!parseReg(inst.dst) || !expectComma() ||
                !parseReg(inst.sa) || !expectComma())
                return fail(lineno, "expected 'rd, ra, rb|#imm'");
            if (p.consume('#')) {
                i64 v;
                if (!p.integer(v))
                    return fail(lineno, "bad immediate");
                inst.imm = i32(v);
                inst.b_is_imm = true;
            } else if (!parseReg(inst.sb)) {
                return fail(lineno, "expected rb or #imm");
            }
            break;
          }
          case OperandForm::DstSaSbSc: {
            if (!parseReg(inst.dst) || !expectComma() ||
                !parseReg(inst.sa) || !expectComma())
                return fail(lineno, "expected 'rd, ra, rb, rc'");
            if (p.consume('#')) {
                i64 v;
                if (!p.integer(v))
                    return fail(lineno, "bad immediate");
                inst.imm = i32(v);
                inst.b_is_imm = true;
            } else if (!parseReg(inst.sb)) {
                return fail(lineno, "expected rb or #imm");
            }
            if (!expectComma() || !parseReg(inst.sc))
                return fail(lineno, "expected ', rc'");
            break;
          }
          case OperandForm::DstImm: {
            if (!parseReg(inst.dst) || !expectComma() ||
                !p.consume('#'))
                return fail(lineno, "expected 'rd, #imm'");
            i64 v;
            if (!p.integer(v))
                return fail(lineno, "bad immediate");
            inst.imm = i32(v);
            inst.b_is_imm = true;
            break;
          }
          case OperandForm::DstSreg: {
            if (!parseReg(inst.dst) || !expectComma() ||
                !p.consume('%'))
                return fail(lineno, "expected 'rd, %sreg'");
            std::string sr = p.ident();
            SpecialReg s = sregFromName(sr);
            if (s == SpecialReg::NumSpecialRegs)
                return fail(lineno, "unknown special register: " + sr);
            inst.sreg = s;
            break;
          }
          case OperandForm::Load: {
            if (!parseReg(inst.dst) || !expectComma() ||
                !p.consume('['))
                return fail(lineno, "expected 'rd, [ra+imm]'");
            if (!parseReg(inst.sa))
                return fail(lineno, "expected base register");
            i64 off = 0;
            p.skipWs();
            if (!p.consume(']')) {
                if (!p.integer(off) || !p.consume(']'))
                    return fail(lineno, "bad address expression");
            }
            inst.imm = i32(off);
            break;
          }
          case OperandForm::Store: {
            if (!p.consume('['))
                return fail(lineno, "expected '[ra+imm], rb'");
            if (!parseReg(inst.sa))
                return fail(lineno, "expected base register");
            i64 off = 0;
            p.skipWs();
            if (!p.consume(']')) {
                if (!p.integer(off) || !p.consume(']'))
                    return fail(lineno, "bad address expression");
            }
            inst.imm = i32(off);
            if (!expectComma() || !parseReg(inst.sb))
                return fail(lineno, "expected ', rb'");
            break;
          }
          case OperandForm::Bra:
            if (!parseLabelRef(PendingRef::Field::Target))
                return fail(lineno, "expected branch target label");
            break;
          case OperandForm::CondBra:
            if (!parseReg(inst.sa) || !expectComma() ||
                !parseLabelRef(PendingRef::Field::Target))
                return fail(lineno, "expected 'ra, label'");
            // Optional reconvergence annotation ", !label".
            if (p.consume(',')) {
                if (!p.consume('!') ||
                    !parseLabelRef(PendingRef::Field::Reconv))
                    return fail(lineno, "bad reconvergence annotation");
            }
            break;
          case OperandForm::Sync:
            if (!p.consume('@') ||
                !parseLabelRef(PendingRef::Field::Div))
                return fail(lineno, "expected '@label'");
            break;
        }

        if (!p.atEnd())
            return fail(lineno, "trailing characters");
        prog.push(inst);
    }

    // Resolve label references; bare "Lnn" names that were never
    // defined resolve to PC nn (the disassembler's label scheme).
    for (const PendingRef &ref : refs) {
        Pc pc;
        auto it = labels.find(ref.name);
        if (it != labels.end()) {
            pc = it->second;
        } else if (ref.name.size() > 1 && ref.name[0] == 'L') {
            char *end = nullptr;
            unsigned long v =
                std::strtoul(ref.name.c_str() + 1, &end, 10);
            if (*end != '\0' || v >= prog.size())
                return fail(ref.line, "undefined label: " + ref.name);
            pc = Pc(v);
        } else {
            return fail(ref.line, "undefined label: " + ref.name);
        }
        Instruction &inst = prog.at(ref.pc);
        switch (ref.field) {
          case PendingRef::Field::Target:
            inst.target = pc;
            break;
          case PendingRef::Field::Reconv:
            inst.reconv = pc;
            break;
          case PendingRef::Field::Div:
            inst.div = pc;
            break;
        }
    }

    std::string err = prog.validate();
    if (!err.empty()) {
        res.error = "invalid program: " + err;
        return res;
    }
    res.program = std::move(prog);
    return res;
}

} // namespace siwi::isa
