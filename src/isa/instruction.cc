#include "isa/instruction.hh"

#include <sstream>

#include "common/log.hh"

namespace siwi::isa {

std::vector<RegIdx>
Instruction::srcRegs() const
{
    std::vector<RegIdx> regs;
    switch (opInfo(op).form) {
      case OperandForm::None:
      case OperandForm::DstImm:
      case OperandForm::DstSreg:
      case OperandForm::Bra:
      case OperandForm::Sync:
        break;
      case OperandForm::DstSa:
        regs.push_back(sa);
        break;
      case OperandForm::DstSaSb:
        regs.push_back(sa);
        if (!b_is_imm)
            regs.push_back(sb);
        break;
      case OperandForm::DstSaSbSc:
        regs.push_back(sa);
        if (!b_is_imm)
            regs.push_back(sb);
        regs.push_back(sc);
        break;
      case OperandForm::Load:
        regs.push_back(sa);
        break;
      case OperandForm::Store:
        regs.push_back(sa);
        regs.push_back(sb);
        break;
      case OperandForm::CondBra:
        regs.push_back(sa);
        break;
    }
    return regs;
}

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << opName(op);
    const auto &info = opInfo(op);
    switch (info.form) {
      case OperandForm::None:
        break;
      case OperandForm::DstSa:
        os << " r" << unsigned(dst) << ", r" << unsigned(sa);
        break;
      case OperandForm::DstSaSb:
        os << " r" << unsigned(dst) << ", r" << unsigned(sa) << ", ";
        if (b_is_imm)
            os << "#" << imm;
        else
            os << "r" << unsigned(sb);
        break;
      case OperandForm::DstSaSbSc:
        os << " r" << unsigned(dst) << ", r" << unsigned(sa) << ", ";
        if (b_is_imm)
            os << "#" << imm;
        else
            os << "r" << unsigned(sb);
        os << ", r" << unsigned(sc);
        break;
      case OperandForm::DstImm:
        os << " r" << unsigned(dst) << ", #" << imm;
        break;
      case OperandForm::DstSreg:
        os << " r" << unsigned(dst) << ", %" << sregName(sreg);
        break;
      case OperandForm::Load:
        os << " r" << unsigned(dst) << ", [r" << unsigned(sa)
           << "+" << imm << "]";
        break;
      case OperandForm::Store:
        os << " [r" << unsigned(sa) << "+" << imm << "], r"
           << unsigned(sb);
        break;
      case OperandForm::Bra:
        os << " L" << target;
        break;
      case OperandForm::CondBra:
        os << " r" << unsigned(sa) << ", L" << target;
        if (reconv != invalid_pc)
            os << ", !L" << reconv;
        break;
      case OperandForm::Sync:
        os << " @L" << div;
        break;
    }
    return os.str();
}

} // namespace siwi::isa
