#include "mem/coalescer.hh"

#include "common/bits.hh"
#include "common/log.hh"

namespace siwi::mem {

std::vector<Transaction>
coalesce(const std::vector<LaneAccess> &accesses, unsigned block_bytes)
{
    siwi_assert(isPow2(block_bytes), "block size must be power of 2");
    const Addr mask = ~Addr(block_bytes - 1);

    std::vector<Transaction> txns;
    for (const LaneAccess &acc : accesses) {
        Addr block = acc.addr & mask;
        bool merged = false;
        for (Transaction &t : txns) {
            if (t.block == block) {
                t.lanes.set(acc.lane);
                merged = true;
                break;
            }
        }
        if (!merged)
            txns.push_back({block, LaneMask::lane(acc.lane)});
    }
    return txns;
}

} // namespace siwi::mem
