#include "mem/cache.hh"

#include "common/bits.hh"
#include "common/log.hh"

namespace siwi::mem {

L1Cache::L1Cache(const CacheConfig &cfg) : cfg_(cfg)
{
    siwi_assert(isPow2(cfg.block_bytes), "block size not pow2");
    u32 num_blocks = cfg.size_bytes / cfg.block_bytes;
    siwi_assert(num_blocks % cfg.ways == 0,
                "cache size not divisible by ways");
    num_sets_ = num_blocks / cfg.ways;
    lines_.resize(num_blocks);
}

u32
L1Cache::setIndex(Addr block) const
{
    return u32((block / cfg_.block_bytes) % num_sets_);
}

Addr
L1Cache::tagOf(Addr block) const
{
    return block / cfg_.block_bytes / num_sets_;
}

bool
L1Cache::access(Addr block)
{
    u32 set = setIndex(block);
    Addr tag = tagOf(block);
    for (u32 w = 0; w < cfg_.ways; ++w) {
        Line &line = lines_[size_t(set) * cfg_.ways + w];
        if (line.valid && line.tag == tag) {
            line.lru = ++use_counter_;
            ++stats_.hits;
            return true;
        }
    }
    ++stats_.misses;
    return false;
}

bool
L1Cache::probe(Addr block) const
{
    u32 set = setIndex(block);
    Addr tag = tagOf(block);
    for (u32 w = 0; w < cfg_.ways; ++w) {
        const Line &line = lines_[size_t(set) * cfg_.ways + w];
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

void
L1Cache::fill(Addr block)
{
    u32 set = setIndex(block);
    Addr tag = tagOf(block);
    Line *victim = nullptr;
    for (u32 w = 0; w < cfg_.ways; ++w) {
        Line &line = lines_[size_t(set) * cfg_.ways + w];
        if (line.valid && line.tag == tag) {
            // Already filled by a racing request; refresh LRU.
            line.lru = ++use_counter_;
            return;
        }
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lru < victim->lru)
            victim = &line;
    }
    if (victim->valid)
        ++stats_.evictions;
    victim->valid = true;
    victim->tag = tag;
    victim->lru = ++use_counter_;
}

void
L1Cache::invalidateAll()
{
    for (Line &line : lines_)
        line.valid = false;
}

} // namespace siwi::mem
