#include "mem/memory_system.hh"

#include "common/log.hh"

namespace siwi::mem {

MemorySystem::MemorySystem(const MemConfig &cfg)
    : cfg_(cfg), l1_(cfg.l1), dram_(cfg.dram),
      wbuf_(cfg.write_buffer_entries)
{
}

void
MemorySystem::tick(Cycle now)
{
    // Fill lines whose DRAM response has arrived.
    for (auto it = inflight_.begin(); it != inflight_.end();) {
        if (it->second <= now) {
            l1_.fill(it->first);
            it = inflight_.erase(it);
        } else {
            ++it;
        }
    }
}

Cycle
MemorySystem::load(Cycle now, Addr block)
{
    ++stats_.load_transactions;

    if (l1_.access(block))
        return now + l1_.config().hit_latency;

    // Merge with an in-flight miss to the same block.
    auto it = inflight_.find(block);
    if (it != inflight_.end()) {
        ++stats_.mshr_merges;
        return it->second + l1_.config().hit_latency;
    }

    Cycle start = now;
    if (inflight_.size() >= cfg_.mshrs) {
        // All MSHRs busy: queue behind the earliest completing miss.
        ++stats_.mshr_stalls;
        Cycle earliest = ~Cycle(0);
        for (const auto &[blk, done] : inflight_)
            earliest = std::min(earliest, done);
        start = std::max(start, earliest);
    }

    Cycle fill = dram_.serve(start, l1_.config().block_bytes);
    inflight_[block] = fill;
    return fill + l1_.config().hit_latency;
}

void
MemorySystem::drainWriteBuf(Cycle now, WriteBufEntry &e)
{
    if (!e.valid)
        return;
    dram_.serve(now, e.bytes);
    e.valid = false;
}

Cycle
MemorySystem::store(Cycle now, Addr block, u32 bytes)
{
    ++stats_.store_transactions;

    if (wbuf_.empty()) {
        // No write buffer: plain write-through.
        dram_.serve(now, bytes);
        return now + 1;
    }

    // Merge into a resident write-combining entry.
    for (WriteBufEntry &e : wbuf_) {
        if (e.valid && e.block == block) {
            e.bytes = std::min(l1_.config().block_bytes,
                               e.bytes + bytes);
            e.last_use = ++wbuf_use_;
            ++stats_.write_combines;
            return now + 1;
        }
    }
    // Allocate: free entry if any, else evict the LRU one.
    WriteBufEntry *victim = &wbuf_[0];
    for (WriteBufEntry &e : wbuf_) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.last_use < victim->last_use)
            victim = &e;
    }
    drainWriteBuf(now, *victim);
    victim->valid = true;
    victim->block = block;
    victim->bytes = bytes;
    victim->last_use = ++wbuf_use_;
    return now + 1;
}

void
MemorySystem::invalidate()
{
    for (WriteBufEntry &e : wbuf_)
        drainWriteBuf(0, e);
    l1_.invalidateAll();
    inflight_.clear();
}

} // namespace siwi::mem
