#include "mem/memory_system.hh"

#include <algorithm>
#include <vector>

#include "common/log.hh"

namespace siwi::mem {

MemorySystem::MemorySystem(const MemConfig &cfg)
    : cfg_(cfg), l1_(cfg.l1),
      owned_backend_(std::make_unique<DramBackend>(cfg.dram)),
      backend_(owned_backend_.get()),
      wbuf_(cfg.write_buffer_entries)
{
    siwi_assert(cfg_.mshrs >= 1, "memory system with no MSHRs");
}

MemorySystem::MemorySystem(const MemConfig &cfg,
                           MemoryBackend &backend, unsigned port)
    : cfg_(cfg), l1_(cfg.l1), backend_(&backend), port_(port),
      wbuf_(cfg.write_buffer_entries)
{
    siwi_assert(cfg_.mshrs >= 1, "memory system with no MSHRs");
}

void
MemorySystem::tick(Cycle now)
{
    // Fill lines whose backend response has arrived.
    for (auto it = inflight_.begin(); it != inflight_.end();) {
        if (it->second.fill <= now) {
            l1_.fill(it->first);
            it = inflight_.erase(it);
        } else {
            ++it;
        }
    }
}

Cycle
MemorySystem::nextWake(Cycle now) const
{
    Cycle wake = backend_->nextWake(now);
    // A fill retires in tick(fill), freeing its MSHR before issue
    // in that same cycle — so the wake is the fill cycle itself.
    // Overdue fills (possible only if tick was not called every
    // cycle) retire at the very next tick, hence the clamp to now.
    for (const auto &[blk, m] : inflight_)
        wake = std::min(wake, std::max(m.fill, now));
    return wake;
}

unsigned
MemorySystem::mshrOccupancy(Cycle now) const
{
    unsigned busy = 0;
    for (const auto &[blk, m] : inflight_)
        busy += m.start <= now && now < m.fill;
    return busy;
}

Cycle
MemorySystem::load(Cycle now, Addr block)
{
    ++stats_.load_transactions;

    if (l1_.access(block))
        return now + l1_.config().hit_latency;

    // Forward from a resident write-combining entry: the block's
    // freshest bytes are still on chip, no backend trip needed.
    for (const WriteBufEntry &e : wbuf_) {
        if (e.valid && e.block == block) {
            ++stats_.write_forwards;
            return now + l1_.config().hit_latency;
        }
    }

    // Merge with an in-flight miss to the same block.
    auto it = inflight_.find(block);
    if (it != inflight_.end()) {
        ++stats_.mshr_merges;
        return it->second.fill + l1_.config().hit_latency;
    }

    // An MSHR is held from the cycle its backend request starts
    // until the fill completes. When every slot is busy at @p now
    // the new miss queues until one frees — each queued miss
    // behind a *different* slot, so at most cfg_.mshrs misses are
    // ever outstanding at once. This is the LSU's hottest path:
    // only collect the pending fills (into a reused buffer) once
    // the cheap count says every slot is actually busy.
    Cycle start = now;
    size_t pending = 0;
    for (const auto &[blk, m] : inflight_)
        pending += m.fill > now;
    if (pending >= cfg_.mshrs) {
        ++stats_.mshr_stalls;
        pending_scratch_.clear();
        for (const auto &[blk, m] : inflight_) {
            if (m.fill > now)
                pending_scratch_.push_back(m.fill);
        }
        // The time the (size - mshrs + 1)-th slot frees: from then
        // on fewer than cfg_.mshrs fills are still outstanding.
        auto kth = pending_scratch_.begin() +
                   long(pending - cfg_.mshrs);
        std::nth_element(pending_scratch_.begin(), kth,
                         pending_scratch_.end());
        start = *kth;
    }

    Cycle fill = backend_->read(start, block,
                                l1_.config().block_bytes, port_);
    inflight_[block] = {start, fill};
    siwi_assert(mshrOccupancy(start) <= cfg_.mshrs,
                "MSHR over-admission");
    return fill + l1_.config().hit_latency;
}

void
MemorySystem::drainWriteBuf(Cycle now, WriteBufEntry &e)
{
    if (!e.valid)
        return;
    backend_->write(now, e.block, e.bytes, port_);
    e.valid = false;
}

Cycle
MemorySystem::store(Cycle now, Addr block, u32 bytes)
{
    ++stats_.store_transactions;

    if (wbuf_.empty()) {
        // No write buffer: plain write-through.
        backend_->write(now, block, bytes, port_);
        return now + 1;
    }

    // Merge into a resident write-combining entry.
    for (WriteBufEntry &e : wbuf_) {
        if (e.valid && e.block == block) {
            e.bytes = std::min(l1_.config().block_bytes,
                               e.bytes + bytes);
            e.last_use = ++wbuf_use_;
            ++stats_.write_combines;
            return now + 1;
        }
    }
    // Allocate: free entry if any, else evict the LRU one.
    WriteBufEntry *victim = &wbuf_[0];
    for (WriteBufEntry &e : wbuf_) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.last_use < victim->last_use)
            victim = &e;
    }
    drainWriteBuf(now, *victim);
    victim->valid = true;
    victim->block = block;
    victim->bytes = bytes;
    victim->last_use = ++wbuf_use_;
    return now + 1;
}

void
MemorySystem::invalidate(Cycle now)
{
    for (WriteBufEntry &e : wbuf_)
        drainWriteBuf(now, e);
    l1_.invalidateAll();
    inflight_.clear();
}

} // namespace siwi::mem
