/**
 * @file
 * Banked chip-level memory system: interleaved L2 slices,
 * multi-channel DRAM, and a contended SM<->L2 interconnect.
 *
 * The legacy SharedL2 funnels every SM through one tag array and
 * one DRAM pipe, so chip results above a few SMs measure that toy
 * backend rather than the pipeline mechanisms under study. BankedL2
 * replaces it with the structure of a real chip:
 *
 *           SM 0      SM 1     ...     SM N-1
 *            |port 0   |port 1         |port N-1
 *         [ NoC: per-port injection bandwidth,
 *           request/response latency ]
 *            |          |               |
 *         slice 0    slice 1   ...   slice S-1   (XOR-fold hash
 *         tags+MSHRs tags+MSHRs       tags+MSHRs  of block bits)
 *            \          |               /
 *         channel 0  channel 1 ...  channel C-1  (XOR-fold of the
 *         queue+pipe queue+pipe     queue+pipe    remaining bits)
 *
 * Everything stays *passive* — all latency is carried by the ready
 * cycles returned from read()/write() and internal state advances
 * only inside calls — so lockstep multi-SM stepping remains
 * deterministic and event-driven cycle skipping stays exact. The
 * one piece of autonomous timed state, the per-slice MSHR files
 * (pending fills and queued-but-unissued channel requests), is
 * reported through nextWake() so the skipping chip loop never
 * sleeps past a state change.
 *
 * Arbitration: within a lockstep cycle SMs are stepped in index
 * order, so same-cycle requests reach a slice in port order — a
 * round-robin rotation across ports (0..N-1, 0..N-1, ...) with no
 * port ever served twice before all others had their turn that
 * cycle. Requests issued with a future start time (MSHR-queued L1
 * misses) reserve bandwidth at call time, in call order, like
 * every other pipe in the simulator.
 *
 * Defaults are chosen so that BankedL2 with one slice, one channel
 * and a free interconnect is arithmetically identical to SharedL2
 * in front of one Dram — the tag array, the DRAM pipe and every
 * returned cycle see the exact same call sequence — which keeps
 * the committed multi-SM baselines bit-identical (tested).
 */

#ifndef SIWI_MEM_BANKED_L2_HH
#define SIWI_MEM_BANKED_L2_HH

#include <map>
#include <vector>

#include "mem/backend.hh"

namespace siwi::mem {

/** SM<->L2 interconnect parameters. */
struct NocConfig
{
    /** Cycles a request takes from SM port to L2 slice. */
    u32 request_latency = 0;
    /** Cycles a response takes from L2 slice back to the SM. */
    u32 response_latency = 0;
    /**
     * Injection bandwidth of one SM port in 0.1 byte/cycle units:
     * an SM's block transfers serialize through its port at this
     * rate before reaching the slices. 0 = unlimited (a free
     * crossbar, the legacy model).
     */
    u32 port_bytes_per_cycle_x10 = 0;
};

/** Per-L2-slice statistics. */
struct L2SliceStats
{
    u64 hits = 0;
    u64 misses = 0;
    u64 writes = 0;       //!< write-throughs passed to a channel
    u64 mshr_merges = 0;  //!< requests merged onto in-flight fills
    u64 mshr_stalls = 0;  //!< misses that waited for an MSHR slot
    u64 tag_stall_cycles = 0; //!< cycles lost to tag-pipe conflicts

    bool operator==(const L2SliceStats &) const = default;
};

/** Per-interconnect-port statistics. */
struct NocPortStats
{
    u64 requests = 0;
    u64 bytes = 0;
    u64 stall_tenths = 0; //!< injection serialization (0.1 cyc)

    bool operator==(const NocPortStats &) const = default;
};

/**
 * The banked chip memory system (see file comment).
 *
 * Slice selection XOR-folds the block-number bits base `slices`,
 * channel selection XOR-folds the remaining bits base `channels`:
 * any aligned window of slices*channels consecutive blocks maps
 * bijectively onto the (slice, channel) pairs, so strided streams
 * spread across both levels instead of camping on one bank.
 */
class BankedL2 final : public MemoryBackend
{
  public:
    /**
     * @p ports is the number of SM-side interconnect ports (one
     * per SM); @p dram describes one channel, replicated
     * dram.channels times.
     */
    BankedL2(const L2Config &cfg, const DramConfig &dram,
             const NocConfig &noc, unsigned ports);

    Cycle read(Cycle now, Addr block, u32 bytes,
               unsigned port) override;
    void write(Cycle now, Addr block, u32 bytes,
               unsigned port) override;
    void invalidate() override;
    Cycle nextWake(Cycle now) const override;

    /** Aggregate over all channels (interface contract). */
    const DramStats &dramStats() const override;

    /** Home slice of a block address. */
    static u32 sliceOf(Addr block, u32 block_bytes, u32 slices);
    /** Home channel of a block address. */
    static u32 channelOf(Addr block, u32 block_bytes, u32 slices,
                         u32 channels);

    /** Chip totals (sum over slices). */
    const L2Stats &stats() const { return totals_; }

    u32 numSlices() const { return u32(slices_.size()); }
    u32 numChannels() const { return u32(channels_.size()); }
    unsigned numPorts() const { return unsigned(ports_.size()); }

    const L2SliceStats &sliceStats(u32 s) const
    {
        return slices_[s].stats;
    }
    const DramStats &channelStats(u32 c) const
    {
        return channels_[c].stats();
    }
    const NocPortStats &portStats(unsigned p) const
    {
        return ports_[p].stats;
    }

    /**
     * MSHRs of slice @p s busy at @p now: misses whose channel
     * request has started and whose fill has not completed. Never
     * exceeds config().mshrs_per_slice (0 = untracked, always 0).
     */
    unsigned sliceMshrOccupancy(u32 s, Cycle now) const;

    const L2Config &config() const { return cfg_; }

  private:
    /** One in-flight slice miss: slot held over [start, fill). */
    struct Miss
    {
        Cycle start = 0; //!< channel request issue cycle
        Cycle fill = 0;  //!< fill (tag install) cycle
    };

    struct Slice
    {
        L1Cache tags;
        Cycle busy_until = 0; //!< tag pipeline free again
        std::map<Addr, Miss> inflight;
        L2SliceStats stats;

        explicit Slice(const CacheConfig &c) : tags(c) {}
    };

    struct Port
    {
        u64 next_free_tenths = 0;
        NocPortStats stats;
    };

    /** NoC request leg: cycle the request reaches its slice. */
    Cycle inject(Cycle now, u32 bytes, unsigned port);
    /** Tag-pipeline leg: cycle the slice lookup happens. */
    Cycle tagLookup(Slice &sl, Cycle arrive);
    /** Install fills that completed at or before @p now. */
    void installCompleted(Slice &sl, Cycle now);

    L2Config cfg_;
    NocConfig noc_;
    std::vector<Slice> slices_;
    std::vector<Dram> channels_;
    std::vector<Port> ports_;
    L2Stats totals_;
    /** Scratch for the MSHR-full slot search (reused). */
    std::vector<Cycle> pending_scratch_;
    /** Channel aggregate, refreshed by dramStats(). */
    mutable DramStats dram_totals_;
};

} // namespace siwi::mem

#endif // SIWI_MEM_BANKED_L2_HH
