#include "mem/memory_image.hh"

#include <bit>

#include "common/log.hh"

namespace siwi::mem {

namespace {

Addr
wordIndex(Addr addr)
{
    siwi_assert((addr & 3) == 0,
                "unaligned 32-bit access at 0x", std::hex, addr);
    return addr >> 2;
}

} // namespace

u32
MemoryImage::read32(Addr addr) const
{
    auto it = words_.find(wordIndex(addr));
    return it == words_.end() ? 0 : it->second;
}

void
MemoryImage::write32(Addr addr, u32 value)
{
    words_[wordIndex(addr)] = value;
}

float
MemoryImage::readF32(Addr addr) const
{
    return std::bit_cast<float>(read32(addr));
}

void
MemoryImage::writeF32(Addr addr, float value)
{
    write32(addr, std::bit_cast<u32>(value));
}

void
MemoryImage::writeWords(Addr base, const std::vector<u32> &words)
{
    for (size_t i = 0; i < words.size(); ++i)
        write32(base + Addr(i) * 4, words[i]);
}

void
MemoryImage::writeFloats(Addr base, const std::vector<float> &floats)
{
    for (size_t i = 0; i < floats.size(); ++i)
        writeF32(base + Addr(i) * 4, floats[i]);
}

std::vector<u32>
MemoryImage::readWords(Addr base, size_t count) const
{
    std::vector<u32> out(count);
    for (size_t i = 0; i < count; ++i)
        out[i] = read32(base + Addr(i) * 4);
    return out;
}

std::vector<float>
MemoryImage::readFloats(Addr base, size_t count) const
{
    std::vector<float> out(count);
    for (size_t i = 0; i < count; ++i)
        out[i] = readF32(base + Addr(i) * 4);
    return out;
}

} // namespace siwi::mem
