#include "mem/dram.hh"

#include "common/bits.hh"
#include "common/log.hh"

namespace siwi::mem {

Cycle
Dram::serve(Cycle now, u32 bytes)
{
    siwi_assert(cfg_.bytes_per_cycle_x10 > 0, "zero dram bandwidth");
    u64 now_tenths = now * 10;
    u64 start = std::max(now_tenths, next_free_tenths_);
    stats_.stall_tenths += start - now_tenths;
    // duration = bytes / (bw/10) cycles = bytes*100/bw tenths.
    u64 duration = divCeil(u64(bytes) * 100, cfg_.bytes_per_cycle_x10);
    next_free_tenths_ = start + duration;

    ++stats_.transactions;
    stats_.bytes += bytes;

    return divCeil(start + duration, 10) + cfg_.latency_cycles;
}

} // namespace siwi::mem
