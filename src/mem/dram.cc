#include "mem/dram.hh"

#include "common/bits.hh"
#include "common/log.hh"

namespace siwi::mem {

Cycle
Dram::serve(Cycle now, u32 bytes)
{
    siwi_assert(cfg_.bytes_per_cycle_x10 > 0, "zero dram bandwidth");
    u64 now_tenths = now * 10;
    u64 start = std::max(now_tenths, next_free_tenths_);
    if (cfg_.queue_depth > 0) {
        // The oldest of the last queue_depth transactions must have
        // returned (completed its flat latency) before this one may
        // occupy a queue slot.
        u64 oldest = completions_[completions_head_];
        if (oldest > start) {
            stats_.queue_full_stall_tenths += oldest - start;
            start = oldest;
        }
    }
    stats_.stall_tenths += start - now_tenths;
    // duration = bytes / (bw/10) cycles = bytes*100/bw tenths.
    u64 duration = divCeil(u64(bytes) * 100, cfg_.bytes_per_cycle_x10);
    next_free_tenths_ = start + duration;

    ++stats_.transactions;
    stats_.bytes += bytes;

    Cycle ready = divCeil(start + duration, 10) + cfg_.latency_cycles;
    if (cfg_.queue_depth > 0) {
        completions_[completions_head_] = ready * 10;
        completions_head_ =
            (completions_head_ + 1) % completions_.size();
    }
    return ready;
}

} // namespace siwi::mem
