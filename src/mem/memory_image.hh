/**
 * @file
 * Functional backing store for the simulated global memory.
 */

#ifndef SIWI_MEM_MEMORY_IMAGE_HH
#define SIWI_MEM_MEMORY_IMAGE_HH

#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace siwi::mem {

/**
 * Sparse, word-granular memory image.
 *
 * The ISA only issues naturally-aligned 4-byte accesses, so the
 * image stores 32-bit words keyed by word index. Unwritten memory
 * reads as zero, which workloads rely on for output buffers.
 */
class MemoryImage
{
  public:
    /** Read a 32-bit word at 4-byte-aligned address @p addr. */
    u32 read32(Addr addr) const;

    /** Write a 32-bit word at 4-byte-aligned address @p addr. */
    void write32(Addr addr, u32 value);

    float readF32(Addr addr) const;
    void writeF32(Addr addr, float value);

    /** Bulk-write a span of words starting at @p base. */
    void writeWords(Addr base, const std::vector<u32> &words);
    void writeFloats(Addr base, const std::vector<float> &floats);

    /** Bulk-read @p count words starting at @p base. */
    std::vector<u32> readWords(Addr base, size_t count) const;
    std::vector<float> readFloats(Addr base, size_t count) const;

    /** Number of words ever written (for tests). */
    size_t wordsWritten() const { return words_.size(); }

    void clear() { words_.clear(); }

  private:
    std::unordered_map<Addr, u32> words_;
};

} // namespace siwi::mem

#endif // SIWI_MEM_MEMORY_IMAGE_HH
