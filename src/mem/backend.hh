/**
 * @file
 * Memory backend below the per-SM L1s.
 *
 * A MemoryBackend is whatever sits behind an SM's private L1 and
 * write buffer: either a private DRAM channel (the paper's
 * single-SM methodology, DramBackend), a chip-level shared L2 in
 * front of one DRAM channel (SharedL2, the legacy multi-SM
 * configuration), or the banked chip memory system (BankedL2, see
 * mem/banked_l2.hh) with address-interleaved L2 slices,
 * multi-channel DRAM and a contended SM<->L2 interconnect.
 * MemorySystem owns a private DramBackend unless the chip injects
 * a shared one.
 */

#ifndef SIWI_MEM_BACKEND_HH
#define SIWI_MEM_BACKEND_HH

#include "mem/cache.hh"
#include "mem/dram.hh"

namespace siwi::mem {

/**
 * Timing model of everything below an SM's private memory
 * structures. Calls are made in simulated-time order per SM; when
 * shared, the chip steps its SMs in lockstep so requests of one
 * cycle arrive in SM order (deterministic for a fixed config).
 * @p port identifies the requesting SM's interconnect port on a
 * shared backend; private backends ignore it.
 */
class MemoryBackend
{
  public:
    virtual ~MemoryBackend() = default;

    /**
     * Serve a block read (an L1 miss refill) issued at @p now
     * through interconnect port @p port.
     * @return the cycle the data is available at the SM.
     */
    virtual Cycle read(Cycle now, Addr block, u32 bytes,
                       unsigned port) = 0;

    /**
     * Serve a write-through of @p bytes to @p block at @p now.
     * Fire-and-forget: only consumes backend bandwidth.
     */
    virtual void write(Cycle now, Addr block, u32 bytes,
                       unsigned port) = 0;

    /** Drop cached residency (kernel boundary; stats persist). */
    virtual void invalidate() = 0;

    /**
     * Earliest cycle after @p now at which this backend changes
     * state on its own, or no_wake. Backends are passive — all
     * latency is carried by the ready cycles read() returns, and
     * internal state only advances inside read()/write() calls —
     * so the default "never" is exact for a backend without timed
     * internal structures. An implementation that tracks
     * outstanding requests of its own (BankedL2's per-slice
     * MSHRs: queued-but-unissued channel requests and pending
     * fills) must override this with the earliest such boundary,
     * or the cycle-skipping SM loop stops being equivalent to
     * per-cycle stepping.
     */
    virtual Cycle nextWake(Cycle now) const
    {
        (void)now;
        return no_wake;
    }

    /** DRAM-channel statistics of this backend (all channels). */
    virtual const DramStats &dramStats() const = 0;
};

/** A private DRAM channel: the paper's single-SM memory system. */
class DramBackend final : public MemoryBackend
{
  public:
    explicit DramBackend(const DramConfig &cfg) : dram_(cfg) {}

    Cycle read(Cycle now, Addr, u32 bytes, unsigned) override
    {
        return dram_.serve(now, bytes);
    }
    void write(Cycle now, Addr, u32 bytes, unsigned) override
    {
        dram_.serve(now, bytes);
    }
    void invalidate() override {}
    const DramStats &dramStats() const override
    {
        return dram_.stats();
    }

  private:
    Dram dram_;
};

/** Shared L2 geometry and timing (Fermi-like chip defaults). */
struct L2Config
{
    u32 size_bytes = 768 * 1024;
    u32 ways = 16;
    u32 block_bytes = 128;
    u32 hit_latency = 30; //!< interconnect + L2 access
    /**
     * Address-interleaved L2 slices (BankedL2 only). Each slice
     * owns size_bytes/slices of capacity, its own tag pipeline and
     * MSHR file, and serves an interleaved share of the block
     * address space. Must be a power of two dividing the set
     * count. 1 reproduces the legacy monolithic SharedL2 timing
     * bit-identically.
     */
    u32 slices = 1;
    /**
     * In-flight misses a slice tracks in its own MSHR file: fills
     * install tags when they complete (not at request time), and
     * same-block requests merge onto the outstanding fill. When
     * the file is full a new miss waits for the earliest slot. 0
     * keeps the legacy immediate-tag-install approximation (a
     * miss installs its tag at lookup time; no slice-level
     * occupancy is tracked).
     */
    u32 mshrs_per_slice = 0;
    /**
     * Cycles a slice's tag pipeline is busy per lookup: back-to-
     * back requests to one slice serialize at this rate while
     * other slices proceed in parallel (the point of banking). 0
     * models a fully pipelined tag array (legacy behavior).
     */
    u32 tag_cycles = 0;
};

/** Shared-L2 statistics (chip level, not per SM). */
struct L2Stats
{
    u64 hits = 0;
    u64 misses = 0;
    u64 writes = 0; //!< write-throughs passed to DRAM

    bool operator==(const L2Stats &) const = default;
};

/**
 * Chip-level shared L2 in front of a single DRAM channel.
 *
 * Tag-only and inclusive of nothing in particular: reads allocate,
 * writes are write-through no-allocate (matching the L1 policy), and
 * fills are modeled as immediate tag installs — the *latency* of a
 * miss is carried by the returned ready cycle, not by a delayed tag
 * update, which keeps the shared structure usable by several SMs
 * without an event queue.
 *
 * Kept as the reference monolithic model: BankedL2 with one slice,
 * one channel and a free interconnect must match it bit-identically
 * (tested), and chips now always instantiate BankedL2.
 */
class SharedL2 final : public MemoryBackend
{
  public:
    SharedL2(const L2Config &cfg, const DramConfig &dram);

    Cycle read(Cycle now, Addr block, u32 bytes,
               unsigned port) override;
    void write(Cycle now, Addr block, u32 bytes,
               unsigned port) override;
    void invalidate() override;

    const L2Stats &stats() const { return stats_; }
    const DramStats &dramStats() const override
    {
        return dram_.stats();
    }
    const L2Config &config() const { return cfg_; }

  private:
    L2Config cfg_;
    L1Cache tags_; //!< reused set-associative LRU tag array
    Dram dram_;
    L2Stats stats_;
};

} // namespace siwi::mem

#endif // SIWI_MEM_BACKEND_HH
