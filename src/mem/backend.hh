/**
 * @file
 * Memory backend below the per-SM L1s.
 *
 * A MemoryBackend is whatever sits behind an SM's private L1 and
 * write buffer: either a private DRAM channel (the paper's
 * single-SM methodology, DramBackend) or a chip-level shared L2 in
 * front of one DRAM channel that all SMs contend for (SharedL2,
 * the multi-SM scaling configuration). MemorySystem owns a private
 * DramBackend unless the chip injects a shared one.
 */

#ifndef SIWI_MEM_BACKEND_HH
#define SIWI_MEM_BACKEND_HH

#include "mem/cache.hh"
#include "mem/dram.hh"

namespace siwi::mem {

/**
 * Timing model of everything below an SM's private memory
 * structures. Calls are made in simulated-time order per SM; when
 * shared, the chip steps its SMs in lockstep so requests of one
 * cycle arrive in SM order (deterministic for a fixed config).
 */
class MemoryBackend
{
  public:
    virtual ~MemoryBackend() = default;

    /**
     * Serve a block read (an L1 miss refill) issued at @p now.
     * @return the cycle the data is available at the SM.
     */
    virtual Cycle read(Cycle now, Addr block, u32 bytes) = 0;

    /**
     * Serve a write-through of @p bytes to @p block at @p now.
     * Fire-and-forget: only consumes backend bandwidth.
     */
    virtual void write(Cycle now, Addr block, u32 bytes) = 0;

    /** Drop cached residency (kernel boundary; stats persist). */
    virtual void invalidate() = 0;

    /**
     * Earliest cycle after @p now at which this backend changes
     * state on its own, or no_wake. Backends are passive — all
     * latency is carried by the ready cycles read() returns, and
     * internal state only advances inside read()/write() calls —
     * so the default "never" is exact. An implementation that
     * grows autonomous timed state (a refresh scheduler, a
     * delayed-fill queue) must override this, or the
     * cycle-skipping SM loop stops being equivalent to per-cycle
     * stepping.
     */
    virtual Cycle nextWake(Cycle now) const
    {
        (void)now;
        return no_wake;
    }

    /** DRAM-channel statistics of this backend. */
    virtual const DramStats &dramStats() const = 0;
};

/** A private DRAM channel: the paper's single-SM memory system. */
class DramBackend final : public MemoryBackend
{
  public:
    explicit DramBackend(const DramConfig &cfg) : dram_(cfg) {}

    Cycle read(Cycle now, Addr, u32 bytes) override
    {
        return dram_.serve(now, bytes);
    }
    void write(Cycle now, Addr, u32 bytes) override
    {
        dram_.serve(now, bytes);
    }
    void invalidate() override {}
    const DramStats &dramStats() const override
    {
        return dram_.stats();
    }

  private:
    Dram dram_;
};

/** Shared L2 geometry and timing (Fermi-like chip defaults). */
struct L2Config
{
    u32 size_bytes = 768 * 1024;
    u32 ways = 16;
    u32 block_bytes = 128;
    u32 hit_latency = 30; //!< interconnect + L2 access
};

/** Shared-L2 statistics (chip level, not per SM). */
struct L2Stats
{
    u64 hits = 0;
    u64 misses = 0;
    u64 writes = 0; //!< write-throughs passed to DRAM
};

/**
 * Chip-level shared L2 in front of a single DRAM channel.
 *
 * Tag-only and inclusive of nothing in particular: reads allocate,
 * writes are write-through no-allocate (matching the L1 policy), and
 * fills are modeled as immediate tag installs — the *latency* of a
 * miss is carried by the returned ready cycle, not by a delayed tag
 * update, which keeps the shared structure usable by several SMs
 * without an event queue.
 */
class SharedL2 final : public MemoryBackend
{
  public:
    SharedL2(const L2Config &cfg, const DramConfig &dram);

    Cycle read(Cycle now, Addr block, u32 bytes) override;
    void write(Cycle now, Addr block, u32 bytes) override;
    void invalidate() override;

    const L2Stats &stats() const { return stats_; }
    const DramStats &dramStats() const override
    {
        return dram_.stats();
    }
    const L2Config &config() const { return cfg_; }

  private:
    L2Config cfg_;
    L1Cache tags_; //!< reused set-associative LRU tag array
    Dram dram_;
    L2Stats stats_;
};

} // namespace siwi::mem

#endif // SIWI_MEM_BACKEND_HH
