#include "mem/banked_l2.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/log.hh"

namespace siwi::mem {

namespace {

CacheConfig
sliceTagConfig(const L2Config &cfg)
{
    CacheConfig c;
    c.size_bytes = cfg.size_bytes / cfg.slices;
    c.ways = cfg.ways;
    c.block_bytes = cfg.block_bytes;
    c.hit_latency = cfg.hit_latency;
    return c;
}

/**
 * XOR-fold @p x into log2(buckets) bits. Folding (rather than
 * taking the low bits) hashes every address bit into the bucket
 * index, so power-of-two strides — ubiquitous in the row/column
 * access patterns of the workload suite — still spread across
 * buckets instead of aliasing onto one.
 */
u32
xorFold(u64 x, u32 buckets)
{
    if (buckets <= 1)
        return 0;
    unsigned bits = log2Floor(buckets);
    u64 fold = 0;
    while (x) {
        fold ^= x & (buckets - 1);
        x >>= bits;
    }
    return u32(fold);
}

} // namespace

u32
BankedL2::sliceOf(Addr block, u32 block_bytes, u32 slices)
{
    return xorFold(block / block_bytes, slices);
}

u32
BankedL2::channelOf(Addr block, u32 block_bytes, u32 slices,
                    u32 channels)
{
    // Fold the bits above the slice digit so consecutive blocks
    // walk slices first, then channels: an aligned window of
    // slices*channels blocks covers every (slice, channel) pair
    // exactly once.
    u64 bn = block / block_bytes;
    return xorFold(bn >> log2Floor(u64(std::max(slices, 1u))),
                   channels);
}

BankedL2::BankedL2(const L2Config &cfg, const DramConfig &dram,
                   const NocConfig &noc, unsigned ports)
    : cfg_(cfg), noc_(noc)
{
    siwi_assert(cfg_.slices >= 1 && isPow2(cfg_.slices),
                "l2_slices must be a nonzero power of two");
    siwi_assert(dram.channels >= 1 && isPow2(dram.channels),
                "dram_channels must be a nonzero power of two");
    siwi_assert(ports >= 1, "banked L2 with no ports");
    CacheConfig tag_cfg = sliceTagConfig(cfg_);
    slices_.reserve(cfg_.slices);
    for (u32 s = 0; s < cfg_.slices; ++s)
        slices_.emplace_back(tag_cfg);
    channels_.reserve(dram.channels);
    for (u32 c = 0; c < dram.channels; ++c)
        channels_.emplace_back(dram);
    ports_.resize(ports);
}

Cycle
BankedL2::inject(Cycle now, u32 bytes, unsigned port)
{
    siwi_assert(port < ports_.size(), "bad interconnect port");
    Port &p = ports_[port];
    ++p.stats.requests;
    p.stats.bytes += bytes;
    if (noc_.port_bytes_per_cycle_x10 == 0)
        return now + noc_.request_latency;
    // Same tenths-of-a-cycle pipe as Dram: the block transfer
    // serializes through the SM's port before crossing the NoC.
    u64 now_tenths = now * 10;
    u64 start = std::max(now_tenths, p.next_free_tenths);
    p.stats.stall_tenths += start - now_tenths;
    u64 duration =
        divCeil(u64(bytes) * 100, noc_.port_bytes_per_cycle_x10);
    p.next_free_tenths = start + duration;
    return divCeil(start + duration, 10) + noc_.request_latency;
}

Cycle
BankedL2::tagLookup(Slice &sl, Cycle arrive)
{
    if (cfg_.tag_cycles == 0)
        return arrive;
    Cycle look = std::max(arrive, sl.busy_until);
    sl.stats.tag_stall_cycles += look - arrive;
    sl.busy_until = look + cfg_.tag_cycles;
    return look;
}

void
BankedL2::installCompleted(Slice &sl, Cycle now)
{
    // Fills are installed lazily, at the next request that reaches
    // the slice: install time is indistinguishable from an eager
    // per-cycle install because tags are only ever consulted inside
    // these calls, and the sweep runs before the lookup below.
    for (auto it = sl.inflight.begin(); it != sl.inflight.end();) {
        if (it->second.fill <= now) {
            sl.tags.fill(it->first);
            it = sl.inflight.erase(it);
        } else {
            ++it;
        }
    }
}

Cycle
BankedL2::read(Cycle now, Addr block, u32 bytes, unsigned port)
{
    Slice &sl = slices_[sliceOf(block, cfg_.block_bytes,
                                cfg_.slices)];
    Dram &ch = channels_[channelOf(block, cfg_.block_bytes,
                                   cfg_.slices,
                                   u32(channels_.size()))];
    Cycle arrive = inject(now, bytes, port);
    Cycle look = tagLookup(sl, arrive);
    if (cfg_.mshrs_per_slice > 0)
        installCompleted(sl, look);

    if (sl.tags.access(block)) {
        ++sl.stats.hits;
        ++totals_.hits;
        return look + cfg_.hit_latency + noc_.response_latency;
    }
    ++sl.stats.misses;
    ++totals_.misses;

    if (cfg_.mshrs_per_slice == 0) {
        // Legacy approximation: the channel request leaves after
        // the L2 lookup and the tag installs immediately, standing
        // in for an MSHR merge (SharedL2's model, kept
        // arithmetically identical for the 1-slice/1-channel
        // equivalence).
        Cycle ready = ch.serve(look + cfg_.hit_latency, bytes);
        sl.tags.fill(block);
        return ready + noc_.response_latency;
    }

    // Real per-slice MSHRs: merge onto an outstanding fill, else
    // take a slot — waiting for the earliest one to free when the
    // file is full, exactly like the L1 MSHRs in MemorySystem.
    auto it = sl.inflight.find(block);
    if (it != sl.inflight.end()) {
        ++sl.stats.mshr_merges;
        return it->second.fill + noc_.response_latency;
    }
    Cycle start = look;
    size_t pending = 0;
    for (const auto &[blk, m] : sl.inflight)
        pending += m.fill > look;
    if (pending >= cfg_.mshrs_per_slice) {
        ++sl.stats.mshr_stalls;
        pending_scratch_.clear();
        for (const auto &[blk, m] : sl.inflight) {
            if (m.fill > look)
                pending_scratch_.push_back(m.fill);
        }
        auto kth = pending_scratch_.begin() +
                   long(pending - cfg_.mshrs_per_slice);
        std::nth_element(pending_scratch_.begin(), kth,
                         pending_scratch_.end());
        start = *kth;
    }
    Cycle fill = ch.serve(start + cfg_.hit_latency, bytes);
    sl.inflight[block] = {start, fill};
    return fill + noc_.response_latency;
}

void
BankedL2::write(Cycle now, Addr block, u32 bytes, unsigned port)
{
    Slice &sl = slices_[sliceOf(block, cfg_.block_bytes,
                                cfg_.slices)];
    Dram &ch = channels_[channelOf(block, cfg_.block_bytes,
                                   cfg_.slices,
                                   u32(channels_.size()))];
    Cycle arrive = inject(now, bytes, port);
    Cycle look = tagLookup(sl, arrive);
    if (cfg_.mshrs_per_slice > 0)
        installCompleted(sl, look);
    ++sl.stats.writes;
    ++totals_.writes;
    // Write-through no-allocate, like the L1s in front: the write
    // crosses the slice and consumes channel bandwidth.
    ch.serve(look + cfg_.hit_latency, bytes);
}

void
BankedL2::invalidate()
{
    for (Slice &sl : slices_) {
        sl.tags.invalidateAll();
        sl.inflight.clear();
    }
}

Cycle
BankedL2::nextWake(Cycle now) const
{
    // The MSHR files are the one autonomous timed structure here:
    // occupancy rises at each queued request's channel-issue cycle
    // (start) and falls at its fill; fills also flip future
    // lookups of that block to hits. Entries entirely in the past
    // are inert — they only wait for the lazy install sweep, which
    // any future call performs with identical effect — so they
    // contribute no wake.
    Cycle wake = no_wake;
    for (const Slice &sl : slices_) {
        for (const auto &[blk, m] : sl.inflight) {
            if (m.start > now)
                wake = std::min(wake, m.start);
            if (m.fill > now)
                wake = std::min(wake, m.fill);
        }
    }
    return wake;
}

unsigned
BankedL2::sliceMshrOccupancy(u32 s, Cycle now) const
{
    unsigned busy = 0;
    for (const auto &[blk, m] : slices_[s].inflight)
        busy += m.start <= now && now < m.fill;
    return busy;
}

const DramStats &
BankedL2::dramStats() const
{
    dram_totals_ = DramStats{};
    for (const Dram &ch : channels_) {
        dram_totals_.transactions += ch.stats().transactions;
        dram_totals_.bytes += ch.stats().bytes;
        dram_totals_.stall_tenths += ch.stats().stall_tenths;
        dram_totals_.queue_full_stall_tenths +=
            ch.stats().queue_full_stall_tenths;
    }
    return dram_totals_;
}

} // namespace siwi::mem
