#include "mem/backend.hh"

namespace siwi::mem {

namespace {

CacheConfig
l2TagConfig(const L2Config &cfg)
{
    CacheConfig c;
    c.size_bytes = cfg.size_bytes;
    c.ways = cfg.ways;
    c.block_bytes = cfg.block_bytes;
    c.hit_latency = cfg.hit_latency;
    return c;
}

} // namespace

SharedL2::SharedL2(const L2Config &cfg, const DramConfig &dram)
    : cfg_(cfg), tags_(l2TagConfig(cfg)), dram_(dram)
{
}

Cycle
SharedL2::read(Cycle now, Addr block, u32 bytes, unsigned port)
{
    (void)port;
    if (tags_.access(block)) {
        ++stats_.hits;
        return now + cfg_.hit_latency;
    }
    ++stats_.misses;
    // The DRAM request leaves after the L2 lookup; the tag installs
    // immediately so a second SM hitting the same block pays the L2
    // hit price (standing in for an L2 MSHR merge).
    Cycle ready = dram_.serve(now + cfg_.hit_latency, bytes);
    tags_.fill(block);
    return ready;
}

void
SharedL2::write(Cycle now, Addr block, u32 bytes, unsigned port)
{
    (void)port;
    ++stats_.writes;
    // Write-through no-allocate, like the L1s in front: the write
    // crosses the L2 and consumes DRAM bandwidth.
    (void)block;
    dram_.serve(now + cfg_.hit_latency, bytes);
}

void
SharedL2::invalidate()
{
    tags_.invalidateAll();
}

} // namespace siwi::mem
