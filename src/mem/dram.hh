/**
 * @file
 * Throughput-limited, constant-latency memory model.
 *
 * Follows the paper's methodology (section 5.1, after Gebhart et
 * al.): a single-SM memory system with 10 GB/s of bandwidth and
 * 330 ns latency at 1 GHz, i.e. 10 bytes per cycle and 330 cycles.
 */

#ifndef SIWI_MEM_DRAM_HH
#define SIWI_MEM_DRAM_HH

#include "common/types.hh"

namespace siwi::mem {

/** DRAM bandwidth/latency parameters. */
struct DramConfig
{
    u32 bytes_per_cycle_x10 = 100; //!< bandwidth in 0.1 B/cyc units
    u32 latency_cycles = 330;      //!< flat access latency
};

/** DRAM statistics. */
struct DramStats
{
    u64 transactions = 0;
    u64 bytes = 0;
    u64 stall_tenths = 0; //!< queueing delay accumulated (0.1 cyc)
};

/**
 * Bandwidth-throttled pipe with flat latency.
 *
 * Transfer time is tracked in tenths of a cycle so the paper's
 * 10 GB/s (12.8 cycles per 128-byte block) is modeled exactly.
 */
class Dram
{
  public:
    explicit Dram(const DramConfig &cfg) : cfg_(cfg) {}

    /**
     * Enqueue a @p bytes transfer at time @p now.
     * @return the cycle the data is available.
     */
    Cycle serve(Cycle now, u32 bytes);

    const DramStats &stats() const { return stats_; }
    const DramConfig &config() const { return cfg_; }

  private:
    DramConfig cfg_;
    u64 next_free_tenths_ = 0;
    DramStats stats_;
};

} // namespace siwi::mem

#endif // SIWI_MEM_DRAM_HH
