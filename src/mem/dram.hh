/**
 * @file
 * Throughput-limited, constant-latency memory model.
 *
 * Follows the paper's methodology (section 5.1, after Gebhart et
 * al.): a single-SM memory system with 10 GB/s of bandwidth and
 * 330 ns latency at 1 GHz, i.e. 10 bytes per cycle and 330 cycles.
 */

#ifndef SIWI_MEM_DRAM_HH
#define SIWI_MEM_DRAM_HH

#include <vector>

#include "common/types.hh"

namespace siwi::mem {

/** DRAM bandwidth/latency parameters (per channel). */
struct DramConfig
{
    u32 bytes_per_cycle_x10 = 100; //!< bandwidth in 0.1 B/cyc units
    u32 latency_cycles = 330;      //!< flat access latency
    /**
     * Independent DRAM channels behind the chip's L2 slices, each
     * with the bandwidth/latency/queue parameters above (so total
     * chip bandwidth is channels * bytes_per_cycle_x10). Only
     * chip-level backends honor this; a per-SM private channel is
     * always exactly one. Must be a power of two (the
     * channel-interleaving hash XOR-folds address digits).
     */
    u32 channels = 1;
    /**
     * Transactions a channel may have outstanding — admitted but
     * not yet returned through the flat latency — before new
     * requests stall at the channel queue. 0 means unbounded (the
     * paper's pure bandwidth pipe).
     */
    u32 queue_depth = 0;
};

/** DRAM statistics. */
struct DramStats
{
    u64 transactions = 0;
    u64 bytes = 0;
    u64 stall_tenths = 0; //!< queueing delay accumulated (0.1 cyc)
    /**
     * Portion of stall_tenths spent waiting for a queue slot (the
     * channel had queue_depth transactions outstanding); the rest
     * is pure bandwidth serialization.
     */
    u64 queue_full_stall_tenths = 0;

    bool operator==(const DramStats &) const = default;
};

/**
 * Bandwidth-throttled pipe with flat latency.
 *
 * Transfer time is tracked in tenths of a cycle so the paper's
 * 10 GB/s (12.8 cycles per 128-byte block) is modeled exactly.
 * With a finite queue_depth the pipe also refuses to admit a new
 * transfer while queue_depth transactions are still outstanding
 * (issued but not yet past the flat latency): the request's start
 * time slips to the completion of the oldest outstanding one,
 * which models a bounded per-channel request queue without an
 * event queue — everything is still resolved at call time.
 */
class Dram
{
  public:
    explicit Dram(const DramConfig &cfg)
        : cfg_(cfg), completions_(cfg.queue_depth, 0)
    {
    }

    /**
     * Enqueue a @p bytes transfer at time @p now.
     * @return the cycle the data is available.
     */
    Cycle serve(Cycle now, u32 bytes);

    const DramStats &stats() const { return stats_; }
    const DramConfig &config() const { return cfg_; }

  private:
    DramConfig cfg_;
    u64 next_free_tenths_ = 0;
    /** Completion times (tenths) of the last queue_depth serves. */
    std::vector<u64> completions_;
    size_t completions_head_ = 0;
    DramStats stats_;
};

} // namespace siwi::mem

#endif // SIWI_MEM_DRAM_HH
