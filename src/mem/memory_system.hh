/**
 * @file
 * Timing glue between the LSU and the L1 / backend models.
 */

#ifndef SIWI_MEM_MEMORY_SYSTEM_HH
#define SIWI_MEM_MEMORY_SYSTEM_HH

#include <map>
#include <memory>
#include <optional>

#include "mem/backend.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"

namespace siwi::mem {

/** Combined memory-system parameters (Table 2 of the paper). */
struct MemConfig
{
    CacheConfig l1;
    DramConfig dram;
    u32 mshrs = 64; //!< max in-flight missed blocks (>= 1)
    /**
     * Write-combining buffer entries for the write-through store
     * path: repeated stores to a resident block merge and drain to
     * DRAM once on eviction (stands in for the shared/local-memory
     * traffic the paper's benchmarks kept on chip).
     */
    u32 write_buffer_entries = 8;
};

/** Memory-system statistics. */
struct MemStats
{
    u64 load_transactions = 0;
    u64 store_transactions = 0;
    u64 write_combines = 0;
    u64 write_forwards = 0; //!< loads served from the write buffer
    u64 mshr_merges = 0;
    u64 mshr_stalls = 0;
};

/**
 * Timing-only memory hierarchy below the LSU.
 *
 * One call = one coalesced 128-byte transaction through the LSU's
 * single L1 port. Loads probe the L1; misses allocate an MSHR and go
 * to the backend, with same-block misses merged. Stores are
 * write-through no-allocate and only consume backend bandwidth.
 *
 * The backend is a private DRAM channel by default (the paper's
 * single-SM methodology); a multi-SM chip injects its shared
 * L2+DRAM backend instead, in which case backend statistics are
 * chip-level and reported by the chip, not per SM.
 */
class MemorySystem
{
  public:
    /** Private backend: one DRAM channel from @p cfg.dram. */
    explicit MemorySystem(const MemConfig &cfg);

    /**
     * Shared backend injected by the chip (not owned); @p port is
     * this SM's interconnect port on it (the SM index).
     */
    MemorySystem(const MemConfig &cfg, MemoryBackend &backend,
                 unsigned port = 0);

    /**
     * Issue a load transaction for @p block at @p now.
     * @return the data-ready cycle. A load to a block resident in
     *         the write-combining buffer is forwarded at hit
     *         latency; when all MSHRs are busy the request waits
     *         for the slot that frees first (counted in stats as
     *         an MSHR stall).
     */
    Cycle load(Cycle now, Addr block);

    /**
     * Issue a store transaction of @p bytes payload at @p now.
     * Fire-and-forget: returns the cycle the LSU may consider the
     * store retired (next cycle).
     */
    Cycle store(Cycle now, Addr block, u32 bytes);

    /** Retire completed fills; called once per cycle. */
    void tick(Cycle now);

    /**
     * Earliest cycle at or after @p now at which this system
     * changes state on its own: the minimum pending
     * fill-completion time (a fill retires in tick(fill), before
     * issue in that cycle; overdue fills clamp to @p now), or
     * no_wake when nothing is in flight. Everything else in here
     * is demand-driven — load/store calls — so a caller that
     * sleeps until the returned cycle and ticks then observes
     * exactly the behavior of one ticking every cycle: fills
     * retire in a batch, and no query can see the difference in
     * between.
     */
    Cycle nextWake(Cycle now) const;

    /**
     * Reset cache/tags between kernels (stats persist). The write
     * buffer drains at @p now — the drain traffic competes for
     * backend bandwidth from the current cycle onward.
     */
    void invalidate(Cycle now);

    /**
     * MSHRs busy at @p now: misses whose backend request has
     * started (a queued miss holds no slot yet) and whose fill
     * has not completed. Never exceeds config().mshrs.
     */
    unsigned mshrOccupancy(Cycle now) const;

    /** True when this system owns a private (non-shared) backend. */
    bool ownsBackend() const { return owned_backend_ != nullptr; }

    const MemStats &stats() const { return stats_; }
    const CacheStats &cacheStats() const { return l1_.stats(); }
    const DramStats &dramStats() const
    {
        return backend_->dramStats();
    }
    const MemConfig &config() const { return cfg_; }

  private:
    struct WriteBufEntry
    {
        bool valid = false;
        Addr block = 0;
        u32 bytes = 0;
        u64 last_use = 0;
    };

    void drainWriteBuf(Cycle now, WriteBufEntry &e);

    /** One in-flight miss: slot held over [start, fill). */
    struct Miss
    {
        Cycle start = 0; //!< backend request issue cycle
        Cycle fill = 0;  //!< fill-completion cycle
    };

    MemConfig cfg_;
    L1Cache l1_;
    std::unique_ptr<DramBackend> owned_backend_;
    MemoryBackend *backend_;
    unsigned port_ = 0; //!< interconnect port on a shared backend
    /** In-flight missed blocks. */
    std::map<Addr, Miss> inflight_;
    /** Reused buffer for the MSHR-full slot search in load(). */
    std::vector<Cycle> pending_scratch_;
    std::vector<WriteBufEntry> wbuf_;
    u64 wbuf_use_ = 0;
    MemStats stats_;
};

} // namespace siwi::mem

#endif // SIWI_MEM_MEMORY_SYSTEM_HH
