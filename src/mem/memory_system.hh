/**
 * @file
 * Timing glue between the LSU and the L1 / DRAM models.
 */

#ifndef SIWI_MEM_MEMORY_SYSTEM_HH
#define SIWI_MEM_MEMORY_SYSTEM_HH

#include <map>
#include <optional>

#include "mem/cache.hh"
#include "mem/dram.hh"

namespace siwi::mem {

/** Combined memory-system parameters (Table 2 of the paper). */
struct MemConfig
{
    CacheConfig l1;
    DramConfig dram;
    u32 mshrs = 64; //!< max in-flight missed blocks
    /**
     * Write-combining buffer entries for the write-through store
     * path: repeated stores to a resident block merge and drain to
     * DRAM once on eviction (stands in for the shared/local-memory
     * traffic the paper's benchmarks kept on chip).
     */
    u32 write_buffer_entries = 8;
};

/** Memory-system statistics. */
struct MemStats
{
    u64 load_transactions = 0;
    u64 store_transactions = 0;
    u64 write_combines = 0;
    u64 mshr_merges = 0;
    u64 mshr_stalls = 0;
};

/**
 * Timing-only memory hierarchy below the LSU.
 *
 * One call = one coalesced 128-byte transaction through the LSU's
 * single L1 port. Loads probe the L1; misses allocate an MSHR and go
 * to DRAM, with same-block misses merged. Stores are write-through
 * no-allocate and only consume DRAM bandwidth.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemConfig &cfg);

    /**
     * Issue a load transaction for @p block at @p now.
     * @return the data-ready cycle. When all MSHRs are busy the
     *         request queues behind the earliest completing miss
     *         (counted in stats as an MSHR stall).
     */
    Cycle load(Cycle now, Addr block);

    /**
     * Issue a store transaction of @p bytes payload at @p now.
     * Fire-and-forget: returns the cycle the LSU may consider the
     * store retired (next cycle).
     */
    Cycle store(Cycle now, Addr block, u32 bytes);

    /** Retire completed fills; called once per cycle. */
    void tick(Cycle now);

    /** Reset cache/tags between kernels (stats persist). */
    void invalidate();

    const MemStats &stats() const { return stats_; }
    const CacheStats &cacheStats() const { return l1_.stats(); }
    const DramStats &dramStats() const { return dram_.stats(); }
    const MemConfig &config() const { return cfg_; }

  private:
    struct WriteBufEntry
    {
        bool valid = false;
        Addr block = 0;
        u32 bytes = 0;
        u64 last_use = 0;
    };

    void drainWriteBuf(Cycle now, WriteBufEntry &e);

    MemConfig cfg_;
    L1Cache l1_;
    Dram dram_;
    /** In-flight missed blocks -> fill-completion cycle. */
    std::map<Addr, Cycle> inflight_;
    std::vector<WriteBufEntry> wbuf_;
    u64 wbuf_use_ = 0;
    MemStats stats_;
};

} // namespace siwi::mem

#endif // SIWI_MEM_MEMORY_SYSTEM_HH
