/**
 * @file
 * L1 data cache timing model (tag-only).
 *
 * Matches the paper's Table 2: 48 KB, 6-way, 128-byte blocks, 3-cycle
 * hit latency. Data values live in the functional MemoryImage; this
 * model tracks tags and replacement for timing purposes only.
 */

#ifndef SIWI_MEM_CACHE_HH
#define SIWI_MEM_CACHE_HH

#include <vector>

#include "common/types.hh"

namespace siwi::mem {

/** Cache geometry and timing. */
struct CacheConfig
{
    u32 size_bytes = 48 * 1024;
    u32 ways = 6;
    u32 block_bytes = 128;
    u32 hit_latency = 3;
};

/** Aggregate cache statistics. */
struct CacheStats
{
    u64 hits = 0;
    u64 misses = 0;
    u64 evictions = 0;
};

/**
 * Set-associative, LRU, tag-only cache.
 *
 * Loads allocate on fill; stores are write-through no-allocate (the
 * Fermi-style global-memory policy) and bypass the tag array.
 */
class L1Cache
{
  public:
    explicit L1Cache(const CacheConfig &cfg);

    /**
     * Look up @p block (block-aligned). On hit, updates LRU and
     * returns true; on miss returns false without allocating.
     */
    bool access(Addr block);

    /** True when @p block is resident (no LRU update). */
    bool probe(Addr block) const;

    /** Allocate @p block, evicting the set's LRU way if needed. */
    void fill(Addr block);

    /** Invalidate everything (kernel boundary). */
    void invalidateAll();

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return cfg_; }
    u32 numSets() const { return num_sets_; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        u64 lru = 0; //!< last-use counter
    };

    u32 setIndex(Addr block) const;
    Addr tagOf(Addr block) const;

    CacheConfig cfg_;
    u32 num_sets_;
    std::vector<Line> lines_; //!< num_sets_ * ways, set-major
    u64 use_counter_ = 0;
    CacheStats stats_;
};

} // namespace siwi::mem

#endif // SIWI_MEM_CACHE_HH
