/**
 * @file
 * Memory access coalescing into 128-byte transactions.
 *
 * Models the paper's LSU: "It can coalesce together multiple
 * parallel accesses that fall within the same 128-byte cache block.
 * Memory instructions that encounter conflicts are replayed with an
 * updated activity mask" (section 2).
 */

#ifndef SIWI_MEM_COALESCER_HH
#define SIWI_MEM_COALESCER_HH

#include <vector>

#include "common/lane_mask.hh"
#include "common/types.hh"

namespace siwi::mem {

/** One coalesced memory transaction. */
struct Transaction
{
    Addr block;     //!< block-aligned base address
    LaneMask lanes; //!< lanes served by this transaction
};

/** A single lane's access, as produced by exec::memAddresses. */
struct LaneAccess
{
    unsigned lane;
    Addr addr;
};

/**
 * Coalesce per-lane accesses into block-aligned transactions.
 *
 * Transactions are emitted in order of first touching lane, which is
 * the order the LSU replays them in.
 *
 * @param accesses per-lane byte addresses (active lanes only)
 * @param block_bytes transaction size (128 in the paper)
 */
std::vector<Transaction> coalesce(
    const std::vector<LaneAccess> &accesses, unsigned block_bytes);

} // namespace siwi::mem

#endif // SIWI_MEM_COALESCER_HH
