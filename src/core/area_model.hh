/**
 * @file
 * Analytic area model reproducing Table 4 of the paper.
 *
 * The paper synthesized the front-end structures with a production
 * RTL compiler and scaled results to Fermi's 40 nm process. We
 * cannot rerun that flow, so the model computes each component's
 * area as (storage bits from the Table 3 inventory) x (a per-bit
 * density calibrated against the paper's synthesis results), plus
 * fixed logic adders (associative-lookup scheduler, segmented
 * register file). See docs/DESIGN.md's substitution table; the
 * calibration is validated to within 1% of Table 4 by
 * tests/core/area_model_test.cc.
 */

#ifndef SIWI_CORE_AREA_MODEL_HH
#define SIWI_CORE_AREA_MODEL_HH

#include <string>
#include <vector>

#include "core/hardware_inventory.hh"

namespace siwi::core {

/** One row of Table 4 (areas in 1000 um^2, 40 nm). */
struct AreaItem
{
    std::string component;
    double area_kum2 = 0.0;
};

/** Calibrated per-bit densities and fixed adders (um^2, 40 nm). */
struct AreaCalibration
{
    // Register-file segmentation: one decoder per lane bank,
    // estimated from Fung et al. [15] scaled to 40 nm (paper 5.2).
    double rf_segmentation_kum2 = 570.0;
    // Scoreboard bit with full register-ID comparators (CAM-like).
    double sb_cam_per_bit = 38.02;
    // Scoreboard bit in the dependency-matrix design.
    double sb_matrix_per_bit = 18.98;
    // Associative mask-inclusion lookup logic (fixed).
    double scheduler_lookup_kum2 = 27.4;
    // Warp pool / HCT bit, by mechanism.
    double hct_pool_per_bit = 21.74;   //!< baseline dual pool
    double hct_sorted_per_bit = 18.41; //!< with sorter network
    double hct_single_per_bit = 17.55; //!< single context + pointer
    // Divergence stack bit vs CCT linked-list bit.
    double stack_per_bit = 15.85;
    double cct_per_bit = 36.12;
    // Instruction buffer bit, by port count.
    double ibuf_per_bit = 17.19;
    double ibuf_dual_per_bit = 21.84;
};

/** Full Table 4 column for one configuration. */
struct AreaReport
{
    pipeline::PipelineMode mode;
    std::vector<AreaItem> items;
    double total_kum2 = 0.0;
    double overhead_kum2 = 0.0;   //!< vs baseline
    double overhead_percent = 0.0;//!< of the full SM
};

/**
 * Area model over the Table 3 inventory.
 */
class AreaModel
{
  public:
    /** Fermi SM area from die-photo measurement (paper 5.2). */
    static constexpr double sm_area_kum2 = 15600.0;

    explicit AreaModel(const InventoryParams &inv = {},
                       const AreaCalibration &cal = {});

    /** Compute the Table 4 column of @p mode. */
    AreaReport report(pipeline::PipelineMode mode) const;

    /** Render the full Table 4. */
    std::string formatTable() const;

  private:
    InventoryParams inv_;
    AreaCalibration cal_;
};

} // namespace siwi::core

#endif // SIWI_CORE_AREA_MODEL_HH
