/**
 * @file
 * Gpu: the top-level public entry point of the library.
 *
 * One Gpu = one SM (the paper simulates a single SM) plus a global
 * memory image shared across launches. Each launch runs a grid to
 * completion on a freshly initialized pipeline and returns its
 * statistics.
 */

#ifndef SIWI_CORE_GPU_HH
#define SIWI_CORE_GPU_HH

#include <memory>

#include "core/kernel.hh"
#include "core/stats.hh"
#include "mem/memory_image.hh"
#include "pipeline/sm.hh"

namespace siwi::core {

/** Grid dimensions for a kernel launch. */
struct LaunchConfig
{
    unsigned grid_blocks = 1;
    unsigned block_threads = 256;
    Cycle max_cycles = 50'000'000;
};

/**
 * The simulated device.
 */
class Gpu
{
  public:
    explicit Gpu(const pipeline::SMConfig &cfg);

    /** Global memory, for host-side setup and result readback. */
    mem::MemoryImage &memory() { return memory_; }
    const mem::MemoryImage &memory() const { return memory_; }

    const pipeline::SMConfig &config() const { return cfg_; }

    /** Run @p kernel over @p lc to completion; returns statistics. */
    SimStats launch(const Kernel &kernel, const LaunchConfig &lc);

    /** As launch(), with a per-issue trace hook (Figure 2 diagrams). */
    SimStats launchTraced(const Kernel &kernel, const LaunchConfig &lc,
                          pipeline::SM::TraceHook hook);

  private:
    pipeline::SMConfig cfg_;
    mem::MemoryImage memory_;
};

} // namespace siwi::core

#endif // SIWI_CORE_GPU_HH
