/**
 * @file
 * Gpu: the top-level public entry point of the library.
 *
 * One Gpu = one chip: `num_sms` SM instances behind a chip-level
 * CTA scheduler, plus a global memory image shared across launches.
 * The paper simulates a single SM with a private DRAM channel, and
 * that remains the default (`Gpu(SMConfig)`); a multi-SM GpuConfig
 * puts per-SM private L1s/write buffers in front of the banked
 * chip memory system (mem/banked_l2.hh): an SM<->L2 interconnect,
 * address-interleaved L2 slices, and multi-channel DRAM the SMs
 * contend for (one slice/one channel by default, which matches
 * the legacy monolithic model bit-identically). Each launch runs
 * a grid to completion on freshly initialized pipelines and
 * returns its statistics (with per-SM breakdowns on a chip).
 */

#ifndef SIWI_CORE_GPU_HH
#define SIWI_CORE_GPU_HH

#include <memory>
#include <string>

#include "core/kernel.hh"
#include "core/stats.hh"
#include "mem/backend.hh"
#include "mem/banked_l2.hh"
#include "mem/memory_image.hh"
#include "pipeline/sm.hh"

namespace siwi::core {

/** Grid dimensions for a kernel launch. */
struct LaunchConfig
{
    unsigned grid_blocks = 1;
    unsigned block_threads = 256;
    Cycle max_cycles = 50'000'000;
    /**
     * Event-driven cycle skipping: when every warp (of every SM)
     * is stalled, jump the clock to the earliest next-event bound
     * instead of stepping empty cycles (see SM::nextWake).
     * Observationally equivalent — all statistics, including
     * cycle counts and timeout detection, are bit-identical to
     * per-cycle stepping — so it defaults on; turn it off to
     * cross-check (siwi-run --no-skip, and the stepping-
     * equivalence tests do exactly that). A launch-time knob, not
     * a GpuConfig field: it cannot change results, so it is not
     * part of the machine identity that configs and baselines key
     * on.
     */
    bool cycle_skip = true;
};

/** Chip-level parameter set: SM geometry times chip topology. */
struct GpuConfig
{
    pipeline::SMConfig sm;
    unsigned num_sms = 1;

    /**
     * Route SM misses through the chip-shared L2 + single DRAM
     * channel instead of a private per-SM DRAM channel. Multi-SM
     * chips require this (it is what they contend on); single-SM
     * configs default to the paper's private-channel methodology
     * so `num_sms = 1` reproduces the single-SM numbers.
     */
    bool shared_backend = false;

    mem::L2Config l2;     //!< shared L2 geometry/timing/slicing
    mem::DramConfig dram; //!< chip DRAM channels (shared path)
    mem::NocConfig noc;   //!< SM<->L2 interconnect (shared path)

    /**
     * Canonical chip for a pipeline mode: SMConfig::make(mode)
     * replicated @p num_sms times. The chip DRAM channel scales
     * the paper's per-SM 10 GB/s linearly up to 4 SMs and then
     * saturates, so the 8-SM point exposes bandwidth contention.
     */
    static GpuConfig make(pipeline::PipelineMode mode,
                          unsigned num_sms);

    /** As above, replicating an already-tuned SM config. */
    static GpuConfig make(const pipeline::SMConfig &sm,
                          unsigned num_sms);

    /**
     * Check invariants without stopping: empty string when
     * consistent, else a diagnostic (covers the nested SM config
     * too). The non-fatal path serves user-supplied spec and
     * machine files.
     */
    std::string checkInvariants() const;

    /** Sanity-check invariants; panics on nonsense. */
    void validate() const;
};

/**
 * Field-wise equality over the GpuConfig field table plus the
 * nested SMConfig table (see core/config_io.hh); != is derived.
 */
bool operator==(const GpuConfig &a, const GpuConfig &b);

/**
 * The simulated device.
 */
class Gpu
{
  public:
    /** Single SM with a private DRAM channel (paper setup). */
    explicit Gpu(const pipeline::SMConfig &cfg);

    /** Full chip: @p cfg.num_sms SMs, optionally sharing L2+DRAM. */
    explicit Gpu(const GpuConfig &cfg);

    /** Global memory, for host-side setup and result readback. */
    mem::MemoryImage &memory() { return memory_; }
    const mem::MemoryImage &memory() const { return memory_; }

    const pipeline::SMConfig &config() const { return cfg_.sm; }
    const GpuConfig &chipConfig() const { return cfg_; }

    /** Run @p kernel over @p lc to completion; returns statistics. */
    SimStats launch(const Kernel &kernel, const LaunchConfig &lc);

    /**
     * As launch(), with a per-issue trace hook (Figure 2
     * diagrams). On a multi-SM chip every SM feeds the same hook;
     * events of one cycle arrive in SM order.
     */
    SimStats launchTraced(const Kernel &kernel, const LaunchConfig &lc,
                          pipeline::SM::TraceHook hook);

    /**
     * Cycles fast-forwarded by event-driven skipping during the
     * most recent launch, summed over SMs. Diagnostic only (not
     * part of SimStats, which stays bit-identical across stepping
     * modes); zero when the launch ran with cycle_skip off.
     */
    u64 skippedCycles() const { return skipped_cycles_; }

  private:
    SimStats launchChip(const Kernel &kernel, const LaunchConfig &lc,
                        const pipeline::SM::TraceHook &hook);

    GpuConfig cfg_;
    mem::MemoryImage memory_;
    u64 skipped_cycles_ = 0;
};

} // namespace siwi::core

#endif // SIWI_CORE_GPU_HH
