#include "core/hardware_inventory.hh"

#include <iomanip>
#include <sstream>

#include "common/log.hh"

namespace siwi::core {

using pipeline::PipelineMode;

namespace {

std::string
geom(unsigned banks, unsigned rows, unsigned bits)
{
    std::ostringstream os;
    if (banks > 1)
        os << banks << "x ";
    os << rows << "x " << bits << "-bit";
    return os.str();
}

} // namespace

std::vector<StorageItem>
hardwareInventory(PipelineMode mode, const InventoryParams &p)
{
    const unsigned base_warps = p.threads / p.baseline_width; // 48
    const unsigned pool_warps = base_warps / 2;               // 24
    const unsigned wide_warps = p.threads / p.wide_width;     // 24

    // Derived entry widths (see docs/DESIGN.md):
    //  - baseline scoreboard entry: 8 bits (6-bit reg id + flags,
    //    after Coon et al.)
    //  - SBI scoreboard entry: 24 bits (reg id + 3x3 dependency
    //    matrix + slot + flags); SBI+SWI needs two issue banks
    //  - context: 32-bit PC + warp-width mask; heap adds a CCT
    //    pointer (7 bits for 128 entries) + valid bits
    const unsigned sb_base_bits = p.scoreboard_entries * 8;  // 48
    const unsigned sb_sbi_bits = p.scoreboard_entries * 24;  // 144
    const unsigned ctx_bits = 32 + p.wide_width;             // 96
    const unsigned hct_bits = 2 * ctx_bits + 7 + 2;          // 201
    const unsigned pool_entry_bits = 32 + p.baseline_width;  // 64
    const unsigned swi_hct_bits = ctx_bits + 7 + 1;          // 104
    const unsigned cct_entry_bits = ctx_bits + 7 + 1;        // 104
    const unsigned cct_total_entries = 128;
    const unsigned stack_block_bits =
        p.stack_block_entries * 64;                          // 256
    const unsigned ibuf_entry_bits = 64;

    std::vector<StorageItem> items;
    auto add = [&](const std::string &name, unsigned banks,
                   unsigned rows, unsigned bits,
                   const std::string &note = "") {
        items.push_back({name, geom(banks, rows, bits),
                         u64(banks) * rows * bits, note});
    };

    switch (mode) {
      case PipelineMode::Baseline:
      case PipelineMode::Warp64:
        items.push_back({"RF", "single-decoder", 0, ""});
        add("Scoreboard", 2, pool_warps, sb_base_bits);
        items.push_back({"Scheduler", "symmetric", 0, ""});
        add("Warp pool/HCT", 2, pool_warps, pool_entry_bits);
        add("Stack/CCT", 1, base_warps * p.stack_blocks,
            stack_block_bits);
        add("Insn. buffer", 1, base_warps, ibuf_entry_bits);
        break;

      case PipelineMode::SBI:
        items.push_back({"RF", "segmented", 0, ""});
        add("Scoreboard", 1, wide_warps, sb_sbi_bits);
        items.push_back({"Scheduler", "warp-split", 0, ""});
        add("Warp pool/HCT", 1, wide_warps, hct_bits);
        add("Stack/CCT", 1, cct_total_entries, cct_entry_bits);
        add("Insn. buffer", 1, 2 * wide_warps, ibuf_entry_bits);
        break;

      case PipelineMode::SWI:
        items.push_back({"RF", "segmented", 0, ""});
        add("Scoreboard", 2, pool_warps, sb_base_bits);
        items.push_back({"Scheduler", "associative lookup", 0, ""});
        add("Warp pool/HCT", 1, wide_warps, swi_hct_bits);
        add("Stack/CCT", 1, cct_total_entries, cct_entry_bits);
        add("Insn. buffer", 1, wide_warps, ibuf_entry_bits,
            "dual-ported");
        break;

      case PipelineMode::SBISWI:
        items.push_back({"RF", "segmented", 0, ""});
        add("Scoreboard", 1, wide_warps, 2 * sb_sbi_bits);
        items.push_back({"Scheduler", "associative lookup", 0, ""});
        add("Warp pool/HCT", 1, wide_warps, hct_bits, "banked");
        add("Stack/CCT", 1, cct_total_entries, cct_entry_bits);
        add("Insn. buffer", 1, 2 * wide_warps, ibuf_entry_bits,
            "dual-ported");
        break;
    }
    return items;
}

u64
inventoryTotalBits(PipelineMode mode, const InventoryParams &p)
{
    u64 total = 0;
    for (const StorageItem &it : hardwareInventory(mode, p))
        total += it.bits;
    return total;
}

std::vector<StorageItem>
chipInventory(PipelineMode mode, unsigned num_sms,
              const mem::L2Config &l2, const InventoryParams &p)
{
    siwi_assert(num_sms >= 1, "chip with no SMs");
    std::vector<StorageItem> items = hardwareInventory(mode, p);
    if (num_sms > 1) {
        for (StorageItem &it : items) {
            it.geometry = std::to_string(num_sms) + "SM x " +
                          it.geometry;
            it.bits *= num_sms;
        }
        // Shared-L2 tag array: one line per block; tag = 32-bit
        // block address minus set and offset bits, plus valid and
        // an LRU rank within the set.
        const u32 lines = l2.size_bytes / l2.block_bytes;
        const u32 sets = lines / l2.ways;
        unsigned set_bits = 0, off_bits = 0;
        for (u32 v = sets; v > 1; v >>= 1)
            ++set_bits;
        for (u32 v = l2.block_bytes; v > 1; v >>= 1)
            ++off_bits;
        const unsigned lru_bits = 4; // rank within <=16 ways
        const unsigned tag_bits =
            (32 - set_bits - off_bits) + 1 + lru_bits;
        items.push_back({"Shared L2 tags",
                         geom(1, lines, tag_bits),
                         u64(lines) * tag_bits, "chip-shared"});
    }
    return items;
}

u64
chipInventoryTotalBits(PipelineMode mode, unsigned num_sms,
                       const mem::L2Config &l2,
                       const InventoryParams &p)
{
    u64 total = 0;
    for (const StorageItem &it : chipInventory(mode, num_sms, l2, p))
        total += it.bits;
    return total;
}

std::string
formatInventoryTable(const InventoryParams &p)
{
    const PipelineMode modes[] = {
        PipelineMode::Baseline, PipelineMode::SBI, PipelineMode::SWI,
        PipelineMode::SBISWI};

    std::vector<std::vector<StorageItem>> cols;
    for (PipelineMode m : modes)
        cols.push_back(hardwareInventory(m, p));

    std::ostringstream os;
    os << std::left << std::setw(16) << "Component";
    const char *names[] = {"Baseline", "SBI", "SWI", "SBI+SWI"};
    for (const char *n : names)
        os << std::setw(22) << n;
    os << "\n";
    for (size_t row = 0; row < cols[0].size(); ++row) {
        os << std::setw(16) << cols[0][row].component;
        for (size_t c = 0; c < 4; ++c) {
            std::string cell = cols[c][row].geometry;
            if (!cols[c][row].note.empty())
                cell += ", " + cols[c][row].note;
            os << std::setw(22) << cell;
        }
        os << "\n";
    }
    os << std::setw(16) << "Total bits";
    for (size_t c = 0; c < 4; ++c) {
        u64 bits = 0;
        for (const StorageItem &it : cols[c])
            bits += it.bits;
        os << std::setw(22) << bits;
    }
    os << "\n";
    return os.str();
}

} // namespace siwi::core
