/**
 * @file
 * Aggregate simulation statistics reported by one kernel launch.
 */

#ifndef SIWI_CORE_STATS_HH
#define SIWI_CORE_STATS_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/banked_l2.hh"

namespace siwi::core {

/** Per-execution-group occupancy. */
struct UnitStats
{
    std::string name;
    u64 issues = 0;
    u64 busy_cycles = 0;
    u64 thread_instructions = 0;

    bool operator==(const UnitStats &) const = default;
};

/**
 * Everything a kernel launch measures. The headline metric is
 * thread instructions per cycle (the y-axis of Figure 7).
 */
struct SimStats
{
    Cycle cycles = 0;
    /**
     * The run was truncated at the cycle cap: every counter below
     * covers only the simulated prefix, and derived metrics (IPC)
     * are not comparable with completed runs. Serialized since
     * schema v3; the runner refuses to present such a cell as a
     * plausible result.
     */
    bool timed_out = false;

    // --- front-end ---
    u64 fetches = 0;
    u64 instructions = 0;        //!< instructions issued
    u64 thread_instructions = 0; //!< sum of active lanes at issue
    u64 primary_issues = 0;
    u64 secondary_issues = 0;
    u64 row_share_issues = 0;    //!< secondary sharing primary's row
    u64 fallback_issues = 0;     //!< SBI secondary fallback issues
    u64 conflicts_squashed = 0;  //!< SWI a-posteriori conflicts
    u64 cascade_stale = 0;       //!< cascade picks invalidated
    u64 sync_suspensions = 0;    //!< scheduling attempts gated by SYNC

    // --- divergence ---
    u64 branch_divergences = 0;
    u64 warp_splits = 0;
    u64 memory_splits = 0;
    u64 merges = 0;
    u64 promotions = 0;
    u64 heap_full_stalls = 0;
    u64 cct_degraded_inserts = 0;
    u64 barrier_releases = 0;
    unsigned max_stack_depth = 0;
    unsigned max_live_contexts = 0;

    // --- memory ---
    u64 l1_hits = 0;
    u64 l1_misses = 0;
    u64 l1_evictions = 0;
    u64 load_transactions = 0;
    u64 store_transactions = 0;
    u64 write_forwards = 0; //!< loads served from the write buffer
    u64 mshr_merges = 0;
    u64 mshr_stalls = 0;
    /** Shared-L2 counters; zero when the machine has no L2. */
    u64 l2_hits = 0;
    u64 l2_misses = 0;
    u64 dram_transactions = 0;
    u64 dram_bytes = 0;

    // --- chip memory topology breakdowns (schema v5) ---
    /**
     * Per-L2-slice / per-DRAM-channel / per-interconnect-port
     * counters of the banked chip memory system, in index order.
     * Chip-level like l2_* and dram_*: filled only on the
     * aggregate of a shared-backend launch (empty for single-SM
     * private runs and in per_sm entries), and their sums match
     * the chip scalars — sum of slice hits == l2_hits, sum of
     * channel transactions == dram_transactions.
     */
    std::vector<mem::L2SliceStats> l2_slices;
    std::vector<mem::DramStats> dram_channels;
    std::vector<mem::NocPortStats> noc_ports;

    // --- per-warp sleep/wake effectiveness (schema v6) ---
    /**
     * Warp-cycles spent in the slept state: a warp that is
     * provably unable to issue, fetch, or touch shared front-end
     * state is parked off the per-cycle active list, and every
     * parked cycle counts here. The per-warp analogue of the
     * SM-level skippedCycles() diagnostic, but jump-invariant and
     * therefore safe to serialize: skip and --no-skip runs park
     * the same warps over the same windows.
     */
    u64 warp_sleep_cycles = 0;
    /**
     * Integral of the awake (runnable active-list) warp count over
     * cycles; avg_runnable_warps_x10 derives from it, and it sums
     * meaningfully across SMs, so it is the serialized primitive.
     */
    u64 runnable_warp_cycles = 0;
    /**
     * Mean awake warps per cycle, fixed-point x10 (e.g. 245 =
     * 24.5 warps). Derived: 10 * runnable_warp_cycles / cycles.
     * aggregate() recomputes it from the summed integral, so on a
     * chip aggregate it reads as mean runnable warps chip-wide.
     */
    u64 avg_runnable_warps_x10 = 0;

    // --- work ---
    u64 threads_launched = 0;
    u64 blocks_launched = 0;

    std::vector<UnitStats> units;

    // --- chip topology (schema v2) ---
    /** SMs that produced these stats (1 for a single-SM run). */
    unsigned num_sms = 1;
    /**
     * Per-SM breakdown of a multi-SM launch, in SM order; empty
     * for single-SM runs. Entries never nest further. SM-local
     * counters of the chip aggregate are the field-wise sum of
     * this vector (cycles is the max); the backend counters
     * (l2_*, dram_*) are chip-level and live only in the
     * aggregate.
     */
    std::vector<SimStats> per_sm;

    /** Thread instructions per cycle. */
    double ipc() const
    {
        return cycles ? double(thread_instructions) / double(cycles)
                      : 0.0;
    }

    /** L1 hit rate over load transactions. */
    double l1HitRate() const
    {
        u64 total = l1_hits + l1_misses;
        return total ? double(l1_hits) / double(total) : 0.0;
    }

    /** Multi-line human-readable report. */
    std::string summary() const;

    /**
     * Fold per-SM launch stats into one chip aggregate: u64
     * counters sum, cycles / depth maxima take the max, unit
     * occupancies merge by name, and @p sms is copied into
     * per_sm. Backend counters (l2_*, dram_*) are summed like the
     * rest, which is correct for private backends; a chip with a
     * *shared* backend overwrites them from the backend's own
     * statistics afterwards, and fills the per-slice/channel/port
     * breakdown vectors (always empty in per-SM inputs) the same
     * way.
     */
    static SimStats aggregate(const std::vector<SimStats> &sms);

    /**
     * Field-wise equality; the determinism tests rely on two runs
     * of the same cell comparing equal. Remember to extend
     * core/stats_io.cc when adding fields here.
     */
    bool operator==(const SimStats &) const = default;
};

} // namespace siwi::core

#endif // SIWI_CORE_STATS_HH
