/**
 * @file
 * Kernel: a compiled program ready to launch on the simulated GPU.
 */

#ifndef SIWI_CORE_KERNEL_HH
#define SIWI_CORE_KERNEL_HH

#include "cfg/compiler.hh"
#include "isa/program.hh"

namespace siwi::core {

/**
 * A compiled kernel: the executable program plus compilation
 * diagnostics (reconvergence analysis results, layout quality).
 */
class Kernel
{
  public:
    Kernel() = default;

    /** Compile a raw builder/assembler program. */
    static Kernel compile(const isa::Program &raw,
                          const cfg::CompileOptions &opts = {});

    /** Wrap an already-executable program without recompiling. */
    static Kernel fromProgram(isa::Program prog);

    const isa::Program &program() const { return prog_; }
    const std::string &name() const { return prog_.name(); }

    /** Reconvergence-pass statistics. */
    const cfg::SyncStats &syncStats() const { return sync_; }

    /** Thread-frontier layout violations (TMD1-style anomalies). */
    unsigned layoutViolations() const { return layout_violations_; }

  private:
    isa::Program prog_;
    cfg::SyncStats sync_;
    unsigned layout_violations_ = 0;
};

} // namespace siwi::core

#endif // SIWI_CORE_KERNEL_HH
