/**
 * @file
 * Stable serialized schema for SimStats.
 *
 * The JSON layout produced here is the contract between the
 * experiment runner, the committed bench baselines and the CI
 * regression gate, so it is versioned: any change to field names,
 * meanings or units must bump stats_schema_version, and readers
 * refuse versions they do not understand (the gate would otherwise
 * compare apples to oranges silently).
 */

#ifndef SIWI_CORE_STATS_IO_HH
#define SIWI_CORE_STATS_IO_HH

#include <span>
#include <string>

#include "common/json.hh"
#include "core/stats.hh"

namespace siwi::core {

/**
 * Version of the serialized SimStats / results layout.
 *
 * v2 (multi-SM): adds write_forwards, l2_hits, l2_misses,
 * num_sms and the per_sm breakdown array to the stats object, and
 * num_sms to each results cell.
 *
 * v3 (front-end layer): renames hit_cycle_limit to timed_out (a
 * truncated run is not a result, and the runner now surfaces it
 * per cell), and adds the scheduling-policy label ("policy") to
 * each results cell.
 *
 * v4 (SimSpec API): results gain a top-level "machines" array —
 * one entry per (sweep, decorated machine label) with the fully
 * resolved chip configuration (core/config_io.hh), so every
 * artifact is self-describing and re-runnable. Cells are
 * unchanged.
 *
 * v5 (banked chip memory system): stats objects of shared-backend
 * launches gain the "l2_slices", "dram_channels" and "noc_ports"
 * breakdown arrays (omitted when empty, like "per_sm"), and DRAM
 * entries carry the new queue_full_stall_tenths counter. Existing
 * scalar counters are unchanged and remain the totals.
 *
 * v6 (per-warp sleep/wake): stats objects gain the skip-
 * effectiveness counters "warp_sleep_cycles" (warp-cycles spent
 * parked off the runnable active list), "runnable_warp_cycles"
 * (integral of the awake-warp count over cycles) and
 * "avg_runnable_warps_x10" (derived mean, fixed-point x10;
 * recomputed from the summed integral on chip aggregates). All
 * three are jump-invariant, so skip and --no-skip runs serialize
 * identically. Existing fields are unchanged.
 */
constexpr int stats_schema_version = 6;

/** One u64 counter of SimStats: serialization name + member. */
struct StatsField
{
    const char *name;
    u64 SimStats::*member;
};

/**
 * Every u64 counter field of SimStats, the one table that drives
 * serialization, parsing and chip aggregation — a counter cannot
 * be serialized without being parseable and summable.
 */
std::span<const StatsField> statsU64Fields();

/** Serialize every SimStats counter as a flat JSON object. */
Json statsToJson(const SimStats &st);

/**
 * Rebuild a SimStats from statsToJson() output. Missing fields
 * default to zero (forward compatibility within one schema
 * version); a non-object argument fails.
 * @return false and set @p err on malformed input.
 */
bool statsFromJson(const Json &j, SimStats *out, std::string *err);

} // namespace siwi::core

#endif // SIWI_CORE_STATS_IO_HH
