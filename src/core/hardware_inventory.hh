/**
 * @file
 * Storage inventory of each pipeline configuration (paper Table 3).
 *
 * Note on parameters: Table 3 of the paper sizes structures for a
 * 1536-thread SM (48 x 32-wide warps baseline, 24 x 64-wide for the
 * interweaving designs), while the performance experiments of
 * Table 2 simulate 1024 threads. We follow the paper: the inventory
 * and the area model use the Table 3 geometry, the performance
 * simulations use Table 2.
 */

#ifndef SIWI_CORE_HARDWARE_INVENTORY_HH
#define SIWI_CORE_HARDWARE_INVENTORY_HH

#include <string>
#include <vector>

#include "pipeline/config.hh"

namespace siwi::core {

/** One storage component of the SM front-end. */
struct StorageItem
{
    std::string component; //!< e.g. "Scoreboard"
    std::string geometry;  //!< e.g. "2x 24x 48-bit"
    u64 bits = 0;          //!< total storage bits
    std::string note;      //!< qualifier (banked, dual-ported, ...)
};

/** Inventory parameters (Table 3 uses the 1536-thread geometry). */
struct InventoryParams
{
    unsigned threads = 1536;
    unsigned baseline_width = 32;
    unsigned wide_width = 64;
    unsigned scoreboard_entries = 6;
    unsigned stack_blocks = 3;   //!< baseline stack: blocks per warp
    unsigned stack_block_entries = 4;
    unsigned cct_entries_per_warp = 8;
};

/**
 * Compute the Table 3 storage inventory of @p mode.
 */
std::vector<StorageItem> hardwareInventory(
    pipeline::PipelineMode mode, const InventoryParams &p = {});

/** Total front-end storage bits of @p mode. */
u64 inventoryTotalBits(pipeline::PipelineMode mode,
                       const InventoryParams &p = {});

/**
 * Chip-level inventory of a multi-SM machine (beyond Table 3):
 * the per-SM front-end storage of @p mode replicated
 * @p num_sms times, plus the shared-L2 tag array when the chip
 * has more than one SM (geometry from @p l2).
 */
std::vector<StorageItem> chipInventory(
    pipeline::PipelineMode mode, unsigned num_sms,
    const mem::L2Config &l2 = {}, const InventoryParams &p = {});

/** Total storage bits of chipInventory(). */
u64 chipInventoryTotalBits(pipeline::PipelineMode mode,
                           unsigned num_sms,
                           const mem::L2Config &l2 = {},
                           const InventoryParams &p = {});

/** Render the full Table 3 (all four configurations). */
std::string formatInventoryTable(const InventoryParams &p = {});

} // namespace siwi::core

#endif // SIWI_CORE_HARDWARE_INVENTORY_HH
