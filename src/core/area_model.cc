#include "core/area_model.hh"

#include <iomanip>
#include <sstream>

#include "common/log.hh"

namespace siwi::core {

using pipeline::PipelineMode;

AreaModel::AreaModel(const InventoryParams &inv,
                     const AreaCalibration &cal)
    : inv_(inv), cal_(cal)
{
}

AreaReport
AreaModel::report(PipelineMode mode) const
{
    auto inv = hardwareInventory(mode, inv_);
    AreaReport rep;
    rep.mode = mode;

    auto bitsOf = [&](const std::string &name) -> u64 {
        for (const StorageItem &it : inv) {
            if (it.component == name)
                return it.bits;
        }
        panic("inventory item missing: ", name);
    };
    auto noteOf = [&](const std::string &name) -> std::string {
        for (const StorageItem &it : inv) {
            if (it.component == name)
                return it.note;
        }
        return "";
    };

    const bool wide = mode != PipelineMode::Baseline;
    const bool sbi = mode == PipelineMode::SBI ||
                     mode == PipelineMode::SBISWI;
    const bool swi = mode == PipelineMode::SWI ||
                     mode == PipelineMode::SBISWI;

    // RF: segmentation cost only for the wide dual-address designs.
    rep.items.push_back(
        {"RF", wide ? cal_.rf_segmentation_kum2 : 0.0});

    // Scoreboard.
    double sb_density =
        sbi ? cal_.sb_matrix_per_bit : cal_.sb_cam_per_bit;
    rep.items.push_back(
        {"Scoreboard", bitsOf("Scoreboard") * sb_density / 1000.0});

    // Scheduler: associative lookup logic for SWI designs.
    rep.items.push_back(
        {"Scheduler", swi ? cal_.scheduler_lookup_kum2 : 0.0});

    // Warp pool / HCT.
    double hct_density = cal_.hct_pool_per_bit;
    if (sbi)
        hct_density = cal_.hct_sorted_per_bit;
    else if (swi)
        hct_density = cal_.hct_single_per_bit;
    rep.items.push_back(
        {"HCT", bitsOf("Warp pool/HCT") * hct_density / 1000.0});

    // Stack (baseline) vs CCT (heap designs).
    double cct_density =
        wide ? cal_.cct_per_bit : cal_.stack_per_bit;
    rep.items.push_back(
        {"CCT", bitsOf("Stack/CCT") * cct_density / 1000.0});

    // Instruction buffer.
    double ib_density = noteOf("Insn. buffer") == "dual-ported"
                            ? cal_.ibuf_dual_per_bit
                            : cal_.ibuf_per_bit;
    rep.items.push_back(
        {"Insn. buffer",
         bitsOf("Insn. buffer") * ib_density / 1000.0});

    for (const AreaItem &it : rep.items)
        rep.total_kum2 += it.area_kum2;

    // Overhead vs the baseline configuration.
    if (mode != PipelineMode::Baseline) {
        AreaReport base = report(PipelineMode::Baseline);
        rep.overhead_kum2 = rep.total_kum2 - base.total_kum2;
        rep.overhead_percent =
            100.0 * rep.overhead_kum2 / sm_area_kum2;
    }
    return rep;
}

std::string
AreaModel::formatTable() const
{
    const PipelineMode modes[] = {
        PipelineMode::Baseline, PipelineMode::SBI, PipelineMode::SWI,
        PipelineMode::SBISWI};
    std::vector<AreaReport> reps;
    for (PipelineMode m : modes)
        reps.push_back(report(m));

    std::ostringstream os;
    os << std::fixed << std::setprecision(1);
    os << std::left << std::setw(16) << "Area (x1000um2)";
    const char *names[] = {"Baseline", "SBI", "SWI", "SBI+SWI"};
    for (const char *n : names)
        os << std::right << std::setw(12) << n;
    os << "\n";
    for (size_t row = 0; row < reps[0].items.size(); ++row) {
        os << std::left << std::setw(16)
           << reps[0].items[row].component;
        for (const AreaReport &r : reps) {
            double a = r.items[row].area_kum2;
            os << std::right << std::setw(12);
            if (a == 0.0)
                os << "-";
            else
                os << a;
        }
        os << "\n";
    }
    os << std::left << std::setw(16) << "Total";
    for (const AreaReport &r : reps)
        os << std::right << std::setw(12) << r.total_kum2;
    os << "\n" << std::left << std::setw(16) << "Overhead";
    for (const AreaReport &r : reps) {
        os << std::right << std::setw(12);
        if (r.mode == PipelineMode::Baseline)
            os << "-";
        else
            os << r.overhead_kum2;
    }
    os << "\n" << std::left << std::setw(16) << "% of 15.6mm2 SM";
    for (const AreaReport &r : reps) {
        os << std::right << std::setw(12);
        if (r.mode == PipelineMode::Baseline)
            os << "-";
        else
            os << r.overhead_percent;
    }
    os << "\n";
    return os.str();
}

} // namespace siwi::core
