#include "core/stats.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "core/stats_io.hh"

namespace siwi::core {

std::string
SimStats::summary() const
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(2);
    os << "cycles:              " << cycles
       << (timed_out ? "  (TIMED OUT: cycle limit hit)" : "")
       << "\n";
    if (num_sms > 1)
        os << "SMs:                 " << num_sms << "\n";
    os << "instructions:        " << instructions << "\n"
       << "thread instructions: " << thread_instructions << "\n"
       << "IPC:                 " << ipc() << "\n"
       << "issues prim/sec:     " << primary_issues << " / "
       << secondary_issues << " (row-share " << row_share_issues
       << ", fallback " << fallback_issues << ")\n"
       << "conflicts squashed:  " << conflicts_squashed
       << ", stale cascade picks: " << cascade_stale << "\n"
       << "divergences:         " << branch_divergences
       << " (splits " << warp_splits << ", mem-splits "
       << memory_splits << ", merges " << merges << ")\n"
       << "sync suspensions:    " << sync_suspensions << "\n"
       << "L1:                  " << l1_hits << " hits / "
       << l1_misses << " misses (" << std::setprecision(1)
       << 100.0 * l1HitRate() << "%)\n"
       << std::setprecision(2);
    if (l2_hits + l2_misses) {
        os << "L2:                  " << l2_hits << " hits / "
           << l2_misses << " misses\n";
    }
    os << "DRAM:                " << dram_transactions
       << " transactions, " << dram_bytes << " bytes\n"
       << "work:                " << blocks_launched << " blocks, "
       << threads_launched << " threads\n";
    for (const UnitStats &u : units) {
        double util =
            cycles ? 100.0 * double(u.busy_cycles) / double(cycles)
                   : 0.0;
        os << "  unit " << std::left << std::setw(5) << u.name
           << std::right << " issues " << std::setw(10) << u.issues
           << "  busy " << std::setw(5) << std::setprecision(1)
           << util << "%  thread-insts " << u.thread_instructions
           << "\n";
    }
    for (size_t i = 0; i < per_sm.size(); ++i) {
        const SimStats &s = per_sm[i];
        os << "  SM" << i << ": ipc " << std::setprecision(2)
           << s.ipc() << "  cycles " << s.cycles << "  blocks "
           << s.blocks_launched << "  thread-insts "
           << s.thread_instructions << "\n";
    }
    return os.str();
}

SimStats
SimStats::aggregate(const std::vector<SimStats> &sms)
{
    SimStats agg;
    for (const SimStats &s : sms) {
        agg.cycles = std::max(agg.cycles, s.cycles);
        agg.timed_out |= s.timed_out;
        for (const StatsField &f : statsU64Fields())
            agg.*f.member += s.*f.member;
        agg.max_stack_depth =
            std::max(agg.max_stack_depth, s.max_stack_depth);
        agg.max_live_contexts =
            std::max(agg.max_live_contexts, s.max_live_contexts);
        for (const UnitStats &u : s.units) {
            auto it = std::find_if(
                agg.units.begin(), agg.units.end(),
                [&](const UnitStats &a) {
                    return a.name == u.name;
                });
            if (it == agg.units.end()) {
                agg.units.push_back(u);
            } else {
                it->issues += u.issues;
                it->busy_cycles += u.busy_cycles;
                it->thread_instructions += u.thread_instructions;
            }
        }
    }
    agg.num_sms = unsigned(sms.size());
    agg.per_sm = sms;
    // The generic loop summed the per-SM means, which is
    // meaningless; recompute from the summed integral so the
    // aggregate reads as mean runnable warps chip-wide.
    agg.avg_runnable_warps_x10 =
        agg.cycles ? (10 * agg.runnable_warp_cycles) / agg.cycles
                   : 0;
    return agg;
}

} // namespace siwi::core
