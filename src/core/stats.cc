#include "core/stats.hh"

#include <iomanip>
#include <sstream>

namespace siwi::core {

std::string
SimStats::summary() const
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(2);
    os << "cycles:              " << cycles
       << (hit_cycle_limit ? "  (CYCLE LIMIT HIT)" : "") << "\n"
       << "instructions:        " << instructions << "\n"
       << "thread instructions: " << thread_instructions << "\n"
       << "IPC:                 " << ipc() << "\n"
       << "issues prim/sec:     " << primary_issues << " / "
       << secondary_issues << " (row-share " << row_share_issues
       << ", fallback " << fallback_issues << ")\n"
       << "conflicts squashed:  " << conflicts_squashed
       << ", stale cascade picks: " << cascade_stale << "\n"
       << "divergences:         " << branch_divergences
       << " (splits " << warp_splits << ", mem-splits "
       << memory_splits << ", merges " << merges << ")\n"
       << "sync suspensions:    " << sync_suspensions << "\n"
       << "L1:                  " << l1_hits << " hits / "
       << l1_misses << " misses (" << std::setprecision(1)
       << 100.0 * l1HitRate() << "%)\n"
       << std::setprecision(2)
       << "DRAM:                " << dram_transactions
       << " transactions, " << dram_bytes << " bytes\n"
       << "work:                " << blocks_launched << " blocks, "
       << threads_launched << " threads\n";
    for (const UnitStats &u : units) {
        double util =
            cycles ? 100.0 * double(u.busy_cycles) / double(cycles)
                   : 0.0;
        os << "  unit " << std::left << std::setw(5) << u.name
           << std::right << " issues " << std::setw(10) << u.issues
           << "  busy " << std::setw(5) << std::setprecision(1)
           << util << "%  thread-insts " << u.thread_instructions
           << "\n";
    }
    return os.str();
}

} // namespace siwi::core
