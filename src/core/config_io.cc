#include "core/config_io.hh"

#include <vector>

#include "pipeline/config_io.hh"

namespace siwi::core {

namespace {

#define F_U32(key, member, doc) \
    SIWI_CFG_U32(GpuConfig, key, member, doc)
#define F_BOOL(key, member, doc) \
    SIWI_CFG_BOOL(GpuConfig, key, member, doc)

/** Chip-level fields; the nested SMConfig has its own table. */
const std::vector<ConfigField<GpuConfig>> &
fieldTable()
{
    static const std::vector<ConfigField<GpuConfig>> v = {
        F_U32("num_sms", num_sms, "SM instances on the chip"),
        F_BOOL("shared_backend", shared_backend,
               "route SM misses through the chip-shared L2 + one "
               "DRAM channel (required when num_sms > 1)"),
        F_U32("l2_size_bytes", l2.size_bytes,
              "shared L2 size in bytes"),
        F_U32("l2_ways", l2.ways, "shared L2 associativity"),
        F_U32("l2_block_bytes", l2.block_bytes,
              "shared L2 block size (must match the L1s)"),
        F_U32("l2_hit_latency", l2.hit_latency,
              "interconnect + L2 access latency in cycles"),
        F_U32("l2_slices", l2.slices,
              "address-interleaved L2 slices (power of two "
              "dividing the set count; 1 = monolithic legacy L2)"),
        F_U32("l2_mshrs_per_slice", l2.mshrs_per_slice,
              "in-flight misses tracked per L2 slice (fills "
              "install tags on completion, same-block requests "
              "merge; 0 = legacy immediate tag install)"),
        F_U32("l2_tag_cycles", l2.tag_cycles,
              "cycles a slice tag pipeline is busy per lookup "
              "(0 = fully pipelined)"),
        F_U32("dram_bytes_per_cycle_x10",
              dram.bytes_per_cycle_x10,
              "per-channel chip DRAM bandwidth in 0.1 byte/cycle "
              "units (shared path)"),
        F_U32("dram_latency_cycles", dram.latency_cycles,
              "chip DRAM-channel flat latency in cycles"),
        F_U32("dram_channels", dram.channels,
              "interleaved chip DRAM channels (power of two; "
              "total bandwidth scales with the channel count)"),
        F_U32("dram_queue_depth", dram.queue_depth,
              "outstanding transactions per DRAM channel before "
              "new requests stall (0 = unbounded)"),
        F_U32("noc_request_latency", noc.request_latency,
              "SM->L2 interconnect request latency in cycles"),
        F_U32("noc_response_latency", noc.response_latency,
              "L2->SM interconnect response latency in cycles"),
        F_U32("noc_port_bytes_per_cycle_x10",
              noc.port_bytes_per_cycle_x10,
              "per-SM interconnect-port injection bandwidth in "
              "0.1 byte/cycle units (0 = unlimited crossbar)"),
    };
    return v;
}

#undef F_U32
#undef F_BOOL

} // namespace

std::span<const ConfigField<GpuConfig>>
gpuConfigFields()
{
    return fieldTable();
}

Json
gpuConfigToJson(const GpuConfig &c)
{
    Json j = configToJson<GpuConfig>(c, gpuConfigFields());
    j.set("sm", pipeline::smConfigToJson(c.sm));
    return j;
}

bool
gpuConfigApplyJson(const Json &j, GpuConfig *c, std::string *err)
{
    if (!j.isObject()) {
        if (err)
            *err = "config: expected a JSON object";
        return false;
    }
    GpuConfig tmp = *c;
    // Split the members: "sm" goes through the SMConfig table,
    // everything else through the chip table (which rejects
    // unknown keys).
    Json chip = Json::object();
    for (const Json::Member &m : j.obj()) {
        if (m.first == "sm") {
            if (!pipeline::smConfigApplyJson(m.second, &tmp.sm,
                                             err))
                return false;
        } else {
            chip.set(m.first, m.second);
        }
    }
    if (!configApplyJson<GpuConfig>(chip, gpuConfigFields(), &tmp,
                                    err))
        return false;
    *c = tmp;
    return true;
}

bool
gpuConfigApplyKeyValue(std::string_view kv, GpuConfig *c,
                       std::string *err)
{
    return configApplyKeyValue<GpuConfig>(kv, gpuConfigFields(), c,
                                          err);
}

Json
gpuConfigSchema()
{
    return configSchema<GpuConfig>(GpuConfig{}, gpuConfigFields());
}

bool
operator==(const GpuConfig &a, const GpuConfig &b)
{
    return configEqual<GpuConfig>(a, b, gpuConfigFields()) &&
           a.sm == b.sm;
}

} // namespace siwi::core
