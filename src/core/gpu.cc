#include "core/gpu.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/log.hh"

namespace siwi::core {

GpuConfig
GpuConfig::make(pipeline::PipelineMode mode, unsigned num_sms)
{
    return make(pipeline::SMConfig::make(mode), num_sms);
}

GpuConfig
GpuConfig::make(const pipeline::SMConfig &sm, unsigned num_sms)
{
    GpuConfig cfg;
    cfg.sm = sm;
    cfg.num_sms = num_sms;
    cfg.shared_backend = num_sms > 1;
    cfg.dram = sm.mem.dram;
    // One channel for the whole chip: bandwidth grows with the SM
    // count but tops out at 4x the paper's per-SM 10 GB/s, so
    // larger chips start contending for it.
    cfg.dram.bytes_per_cycle_x10 *= std::min(num_sms, 4u);
    return cfg;
}

std::string
GpuConfig::checkInvariants() const
{
    std::string sm_err = sm.checkInvariants();
    if (!sm_err.empty())
        return sm_err;
    if (num_sms < 1)
        return "num_sms must be at least 1";
    if (num_sms > 1 && !shared_backend)
        return "a multi-SM chip requires the shared backend";
    if (shared_backend) {
        if (l2.block_bytes != sm.mem.l1.block_bytes)
            return "l2_block_bytes must match l1_block_bytes";
        // The shared L2 reuses the set-associative tag array, so
        // mirror its constructor asserts too.
        u32 l2_blocks = l2.size_bytes / l2.block_bytes;
        if (l2.ways < 1 || l2_blocks < l2.ways ||
            l2_blocks % l2.ways != 0)
            return "l2_size_bytes must be a whole number of "
                   "sets (a multiple of l2_ways * "
                   "l2_block_bytes)";
        if (dram.bytes_per_cycle_x10 < 1)
            return "chip dram_bytes_per_cycle_x10 must be at "
                   "least 1";
        // Banked topology: the interleaving hashes XOR-fold
        // power-of-two digits, and each slice must own a whole
        // number of sets of the shared capacity.
        if (!isPow2(l2.slices))
            return "l2_slices must be a nonzero power of two";
        u32 l2_sets = l2_blocks / l2.ways;
        if (l2_sets % l2.slices != 0)
            return "l2_slices must divide the shared L2 set "
                   "count (l2_size_bytes / l2_block_bytes / "
                   "l2_ways)";
        if (!isPow2(dram.channels))
            return "dram_channels must be a nonzero power of two";
    }
    return {};
}

void
GpuConfig::validate() const
{
    std::string err = checkInvariants();
    siwi_assert(err.empty(), err);
}

Gpu::Gpu(const pipeline::SMConfig &cfg)
{
    cfg_.sm = cfg;
    cfg_.validate();
}

Gpu::Gpu(const GpuConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
}

SimStats
Gpu::launch(const Kernel &kernel, const LaunchConfig &lc)
{
    return launchTraced(kernel, lc, nullptr);
}

SimStats
Gpu::launchTraced(const Kernel &kernel, const LaunchConfig &lc,
                  pipeline::SM::TraceHook hook)
{
    skipped_cycles_ = 0;
    if (cfg_.num_sms == 1 && !cfg_.shared_backend) {
        // The paper's single-SM setup: private DRAM channel,
        // self-assigned CTAs.
        pipeline::SM sm(cfg_.sm, memory_);
        if (hook)
            sm.setTraceHook(std::move(hook));
        sm.launch(kernel.program(), lc.grid_blocks,
                  lc.block_threads);
        SimStats stats = sm.run(lc.max_cycles, lc.cycle_skip);
        skipped_cycles_ = sm.skippedCycles();
        return stats;
    }
    return launchChip(kernel, lc, hook);
}

SimStats
Gpu::launchChip(const Kernel &kernel, const LaunchConfig &lc,
                const pipeline::SM::TraceHook &hook)
{
    mem::BankedL2 backend(cfg_.l2, cfg_.dram, cfg_.noc,
                          cfg_.num_sms);

    // Chip-level CTA scheduler: a shared cursor over the grid.
    // Every SM pulls at most one CTA per cycle and SMs are stepped
    // in index order, so the initial distribution is round-robin
    // and each retirement hands the next pending CTA to the SM
    // that freed a slot ("round-robin-on-retire").
    unsigned next_cta = 0;
    auto source = [&next_cta, grid = lc.grid_blocks]() -> int {
        return next_cta < grid ? int(next_cta++) : -1;
    };

    std::vector<std::unique_ptr<pipeline::SM>> sms;
    sms.reserve(cfg_.num_sms);
    for (unsigned i = 0; i < cfg_.num_sms; ++i) {
        auto sm = std::make_unique<pipeline::SM>(cfg_.sm, memory_,
                                                 &backend, i);
        if (hook)
            sm->setTraceHook(hook);
        sm->setCtaSource(source);
        sm->launch(kernel.program(), lc.grid_blocks,
                   lc.block_threads);
        sms.push_back(std::move(sm));
    }

    // Lockstep cycle loop: within a cycle, SM order fixes the
    // order of shared-backend requests, which keeps multi-SM
    // timing deterministic.
    Cycle cycle = 0;
    bool hit_limit = false;
    for (;;) {
        bool all_done = true;
        for (const auto &sm : sms) {
            if (!sm->done()) {
                all_done = false;
                break;
            }
        }
        if (all_done)
            break;
        if (cycle >= lc.max_cycles) {
            warn("chip cycle limit hit at ", cycle);
            hit_limit = true;
            break;
        }
        bool progress = false;
        for (auto &sm : sms) {
            if (!sm->done())
                progress |= sm->step();
        }
        ++cycle;
        if (lc.cycle_skip && !progress) {
            // Every live SM is asleep: jump the whole chip to the
            // minimum wake bound across them, which preserves the
            // lockstep (all live SM clocks stay equal to the chip
            // cycle; done SMs keep their frozen clocks, exactly as
            // when they simply stop being stepped). The shared
            // backend's own wake bounds (per-slice MSHR issue and
            // fill boundaries) flow in through each SM's
            // MemorySystem::nextWake, which queries the backend.
            Cycle wake = lc.max_cycles;
            for (const auto &sm : sms) {
                if (!sm->done())
                    wake = std::min(wake, sm->nextWake());
            }
            if (wake > cycle) {
                for (auto &sm : sms) {
                    if (!sm->done())
                        sm->skipTo(wake);
                }
                cycle = wake;
            }
        }
    }

    std::vector<SimStats> per_sm;
    per_sm.reserve(sms.size());
    for (auto &sm : sms) {
        per_sm.push_back(sm->finalizeStats());
        skipped_cycles_ += sm->skippedCycles();
    }

    SimStats agg = SimStats::aggregate(per_sm);
    agg.timed_out |= hit_limit;
    // Chip-level backend counters: reported once, from the shared
    // backend itself (per-SM stats keep them zero), with the
    // schema-v5 per-slice/channel/port breakdowns alongside the
    // scalar totals.
    agg.l2_hits = backend.stats().hits;
    agg.l2_misses = backend.stats().misses;
    agg.dram_transactions = backend.dramStats().transactions;
    agg.dram_bytes = backend.dramStats().bytes;
    for (u32 s = 0; s < backend.numSlices(); ++s)
        agg.l2_slices.push_back(backend.sliceStats(s));
    for (u32 c = 0; c < backend.numChannels(); ++c)
        agg.dram_channels.push_back(backend.channelStats(c));
    for (unsigned p = 0; p < backend.numPorts(); ++p)
        agg.noc_ports.push_back(backend.portStats(p));
    return agg;
}

} // namespace siwi::core
