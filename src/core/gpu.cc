#include "core/gpu.hh"

#include "common/log.hh"

namespace siwi::core {

Gpu::Gpu(const pipeline::SMConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
}

SimStats
Gpu::launch(const Kernel &kernel, const LaunchConfig &lc)
{
    return launchTraced(kernel, lc, nullptr);
}

SimStats
Gpu::launchTraced(const Kernel &kernel, const LaunchConfig &lc,
                  pipeline::SM::TraceHook hook)
{
    pipeline::SM sm(cfg_, memory_);
    if (hook)
        sm.setTraceHook(std::move(hook));
    sm.launch(kernel.program(), lc.grid_blocks, lc.block_threads);
    return sm.run(lc.max_cycles);
}

} // namespace siwi::core
