#include "core/stats_io.hh"

namespace siwi::core {

namespace {

constexpr StatsField u64_fields[] = {
    {"fetches", &SimStats::fetches},
    {"instructions", &SimStats::instructions},
    {"thread_instructions", &SimStats::thread_instructions},
    {"primary_issues", &SimStats::primary_issues},
    {"secondary_issues", &SimStats::secondary_issues},
    {"row_share_issues", &SimStats::row_share_issues},
    {"fallback_issues", &SimStats::fallback_issues},
    {"conflicts_squashed", &SimStats::conflicts_squashed},
    {"cascade_stale", &SimStats::cascade_stale},
    {"sync_suspensions", &SimStats::sync_suspensions},
    {"branch_divergences", &SimStats::branch_divergences},
    {"warp_splits", &SimStats::warp_splits},
    {"memory_splits", &SimStats::memory_splits},
    {"merges", &SimStats::merges},
    {"promotions", &SimStats::promotions},
    {"heap_full_stalls", &SimStats::heap_full_stalls},
    {"cct_degraded_inserts", &SimStats::cct_degraded_inserts},
    {"barrier_releases", &SimStats::barrier_releases},
    {"l1_hits", &SimStats::l1_hits},
    {"l1_misses", &SimStats::l1_misses},
    {"l1_evictions", &SimStats::l1_evictions},
    {"load_transactions", &SimStats::load_transactions},
    {"store_transactions", &SimStats::store_transactions},
    {"write_forwards", &SimStats::write_forwards},
    {"mshr_merges", &SimStats::mshr_merges},
    {"mshr_stalls", &SimStats::mshr_stalls},
    {"l2_hits", &SimStats::l2_hits},
    {"l2_misses", &SimStats::l2_misses},
    {"dram_transactions", &SimStats::dram_transactions},
    {"dram_bytes", &SimStats::dram_bytes},
    {"warp_sleep_cycles", &SimStats::warp_sleep_cycles},
    {"runnable_warp_cycles", &SimStats::runnable_warp_cycles},
    {"avg_runnable_warps_x10", &SimStats::avg_runnable_warps_x10},
    {"threads_launched", &SimStats::threads_launched},
    {"blocks_launched", &SimStats::blocks_launched},
};

} // namespace

std::span<const StatsField>
statsU64Fields()
{
    return u64_fields;
}

Json
statsToJson(const SimStats &st)
{
    Json j = Json::object();
    j.set("cycles", Json(st.cycles));
    j.set("timed_out", Json(st.timed_out));
    for (const StatsField &f : u64_fields)
        j.set(f.name, Json(st.*f.member));
    j.set("max_stack_depth", Json(st.max_stack_depth));
    j.set("max_live_contexts", Json(st.max_live_contexts));
    j.set("num_sms", Json(st.num_sms));

    Json units = Json::array();
    for (const UnitStats &u : st.units) {
        Json ju = Json::object();
        ju.set("name", Json(u.name));
        ju.set("issues", Json(u.issues));
        ju.set("busy_cycles", Json(u.busy_cycles));
        ju.set("thread_instructions", Json(u.thread_instructions));
        units.push(std::move(ju));
    }
    j.set("units", std::move(units));

    // Chip memory-topology breakdowns (schema v5): only present
    // on shared-backend aggregates, omitted otherwise so
    // single-SM result files stay compact.
    if (!st.l2_slices.empty()) {
        Json arr = Json::array();
        for (const mem::L2SliceStats &s : st.l2_slices) {
            Json js = Json::object();
            js.set("hits", Json(s.hits));
            js.set("misses", Json(s.misses));
            js.set("writes", Json(s.writes));
            js.set("mshr_merges", Json(s.mshr_merges));
            js.set("mshr_stalls", Json(s.mshr_stalls));
            js.set("tag_stall_cycles", Json(s.tag_stall_cycles));
            arr.push(std::move(js));
        }
        j.set("l2_slices", std::move(arr));
    }
    if (!st.dram_channels.empty()) {
        Json arr = Json::array();
        for (const mem::DramStats &c : st.dram_channels) {
            Json jc = Json::object();
            jc.set("transactions", Json(c.transactions));
            jc.set("bytes", Json(c.bytes));
            jc.set("stall_tenths", Json(c.stall_tenths));
            jc.set("queue_full_stall_tenths",
                   Json(c.queue_full_stall_tenths));
            arr.push(std::move(jc));
        }
        j.set("dram_channels", std::move(arr));
    }
    if (!st.noc_ports.empty()) {
        Json arr = Json::array();
        for (const mem::NocPortStats &p : st.noc_ports) {
            Json jp = Json::object();
            jp.set("requests", Json(p.requests));
            jp.set("bytes", Json(p.bytes));
            jp.set("stall_tenths", Json(p.stall_tenths));
            arr.push(std::move(jp));
        }
        j.set("noc_ports", std::move(arr));
    }

    // The per-SM breakdown only exists on multi-SM chip
    // aggregates; omit the key entirely for the common case so
    // single-SM result files stay compact.
    if (!st.per_sm.empty()) {
        Json per_sm = Json::array();
        for (const SimStats &s : st.per_sm)
            per_sm.push(statsToJson(s));
        j.set("per_sm", std::move(per_sm));
    }
    return j;
}

bool
statsFromJson(const Json &j, SimStats *out, std::string *err)
{
    if (!j.isObject()) {
        if (err)
            *err = "stats: expected a JSON object";
        return false;
    }
    SimStats st;
    st.cycles = Cycle(j.getInt("cycles"));
    st.timed_out = j.getBool("timed_out");
    for (const StatsField &f : u64_fields)
        st.*f.member = u64(j.getInt(f.name));
    st.max_stack_depth = unsigned(j.getInt("max_stack_depth"));
    st.max_live_contexts = unsigned(j.getInt("max_live_contexts"));
    st.num_sms = unsigned(j.getInt("num_sms", 1));

    if (const Json *units = j.find("units")) {
        if (!units->isArray()) {
            if (err)
                *err = "stats: 'units' must be an array";
            return false;
        }
        for (const Json &ju : units->arr()) {
            if (!ju.isObject()) {
                if (err)
                    *err = "stats: unit entry must be an object";
                return false;
            }
            UnitStats u;
            u.name = ju.getString("name");
            u.issues = u64(ju.getInt("issues"));
            u.busy_cycles = u64(ju.getInt("busy_cycles"));
            u.thread_instructions =
                u64(ju.getInt("thread_instructions"));
            st.units.push_back(std::move(u));
        }
    }

    if (const Json *slices = j.find("l2_slices")) {
        if (!slices->isArray()) {
            if (err)
                *err = "stats: 'l2_slices' must be an array";
            return false;
        }
        for (const Json &js : slices->arr()) {
            if (!js.isObject()) {
                if (err)
                    *err = "stats: slice entry must be an object";
                return false;
            }
            mem::L2SliceStats s;
            s.hits = u64(js.getInt("hits"));
            s.misses = u64(js.getInt("misses"));
            s.writes = u64(js.getInt("writes"));
            s.mshr_merges = u64(js.getInt("mshr_merges"));
            s.mshr_stalls = u64(js.getInt("mshr_stalls"));
            s.tag_stall_cycles = u64(js.getInt("tag_stall_cycles"));
            st.l2_slices.push_back(s);
        }
    }
    if (const Json *chans = j.find("dram_channels")) {
        if (!chans->isArray()) {
            if (err)
                *err = "stats: 'dram_channels' must be an array";
            return false;
        }
        for (const Json &jc : chans->arr()) {
            if (!jc.isObject()) {
                if (err)
                    *err = "stats: channel entry must be an object";
                return false;
            }
            mem::DramStats c;
            c.transactions = u64(jc.getInt("transactions"));
            c.bytes = u64(jc.getInt("bytes"));
            c.stall_tenths = u64(jc.getInt("stall_tenths"));
            c.queue_full_stall_tenths =
                u64(jc.getInt("queue_full_stall_tenths"));
            st.dram_channels.push_back(c);
        }
    }
    if (const Json *ports = j.find("noc_ports")) {
        if (!ports->isArray()) {
            if (err)
                *err = "stats: 'noc_ports' must be an array";
            return false;
        }
        for (const Json &jp : ports->arr()) {
            if (!jp.isObject()) {
                if (err)
                    *err = "stats: port entry must be an object";
                return false;
            }
            mem::NocPortStats p;
            p.requests = u64(jp.getInt("requests"));
            p.bytes = u64(jp.getInt("bytes"));
            p.stall_tenths = u64(jp.getInt("stall_tenths"));
            st.noc_ports.push_back(p);
        }
    }

    if (const Json *per_sm = j.find("per_sm")) {
        if (!per_sm->isArray()) {
            if (err)
                *err = "stats: 'per_sm' must be an array";
            return false;
        }
        for (const Json &js : per_sm->arr()) {
            SimStats s;
            if (!statsFromJson(js, &s, err))
                return false;
            st.per_sm.push_back(std::move(s));
        }
    }
    *out = std::move(st);
    return true;
}

} // namespace siwi::core
