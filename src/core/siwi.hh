/**
 * @file
 * Umbrella header: the full public API of the SBWI library.
 *
 * Typical use:
 * @code
 *   #include "core/siwi.hh"
 *
 *   siwi::isa::KernelBuilder b("saxpy");
 *   ... build the kernel ...
 *   auto kernel = siwi::core::Kernel::compile(b.build());
 *
 *   auto cfg = siwi::pipeline::SMConfig::make(
 *       siwi::pipeline::PipelineMode::SBISWI);
 *   siwi::core::Gpu gpu(cfg);
 *   ... initialize gpu.memory() ...
 *   auto stats = gpu.launch(kernel, {grid_blocks, block_threads});
 *   std::cout << stats.summary();
 * @endcode
 */

#ifndef SIWI_CORE_SIWI_HH
#define SIWI_CORE_SIWI_HH

#include "cfg/compiler.hh"
#include "core/area_model.hh"
#include "core/gpu.hh"
#include "core/hardware_inventory.hh"
#include "core/kernel.hh"
#include "core/stats.hh"
#include "isa/assembler.hh"
#include "isa/builder.hh"
#include "pipeline/config.hh"
#include "workloads/workload.hh"

#endif // SIWI_CORE_SIWI_HH
