#include "core/kernel.hh"

namespace siwi::core {

Kernel
Kernel::compile(const isa::Program &raw,
                const cfg::CompileOptions &opts)
{
    cfg::CompiledKernel ck = cfg::compileKernel(raw, opts);
    Kernel k;
    k.prog_ = std::move(ck.program);
    k.sync_ = ck.sync;
    k.layout_violations_ = ck.layout_violations;
    return k;
}

Kernel
Kernel::fromProgram(isa::Program prog)
{
    Kernel k;
    k.prog_ = std::move(prog);
    return k;
}

} // namespace siwi::core
