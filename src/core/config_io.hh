/**
 * @file
 * The GpuConfig (chip-level) field table, companion to
 * pipeline/config_io.hh: chip topology and shared-L2/DRAM knobs as
 * data. gpuConfigToJson() nests the full SMConfig dump under "sm",
 * so one JSON block is the complete, re-runnable description of a
 * simulated machine — this is the config block the experiment
 * runner embeds into every results artifact.
 */

#ifndef SIWI_CORE_CONFIG_IO_HH
#define SIWI_CORE_CONFIG_IO_HH

#include <string>

#include "common/config_reflect.hh"
#include "core/gpu.hh"

namespace siwi::core {

/** The chip-level fields of GpuConfig (the "sm" block has its
 *  own table, pipeline::smConfigFields()). */
std::span<const ConfigField<GpuConfig>> gpuConfigFields();

/** Full dump: chip fields in table order, then "sm". */
Json gpuConfigToJson(const GpuConfig &c);

/**
 * Apply JSON object @p j onto @p c: chip keys via the table, an
 * optional "sm" member via the SMConfig table. Unknown keys, type
 * mismatches and bad enum names are strict errors naming the key;
 * @p c is unchanged on failure.
 */
bool gpuConfigApplyJson(const Json &j, GpuConfig *c,
                        std::string *err);

/**
 * Apply one "key=value" chip-level override through the table
 * (the companion of pipeline::smConfigApplyKeyValue for GpuConfig
 * fields). Unknown keys and bad values are soft errors; @p c is
 * unchanged on failure.
 */
bool gpuConfigApplyKeyValue(std::string_view kv, GpuConfig *c,
                            std::string *err);

/** Schema dump of the chip-level fields. */
Json gpuConfigSchema();

} // namespace siwi::core

#endif // SIWI_CORE_CONFIG_IO_HH
