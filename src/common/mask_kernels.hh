/**
 * @file
 * Batched 64-bit mask kernels for the scheduler hot paths.
 *
 * The SWI mask-inclusion lookup (paper §4) tests every candidate's
 * activity mask for inclusion in the primary's free lanes — one
 * AND-NOT and a zero test per candidate. Done one candidate at a
 * time inside the selection loop the test hides behind branches;
 * hoisted out into a flat pass over a contiguous mask array it is
 * branch-free and auto-vectorizes (4–8 masks per SIMD op), which is
 * what these kernels provide. They are pure bit math: callers keep
 * full control of iteration order, statistics, and RNG draws, so
 * using them cannot perturb simulation results.
 */

#ifndef SIWI_COMMON_MASK_KERNELS_HH
#define SIWI_COMMON_MASK_KERNELS_HH

#include <cstddef>

#include "common/types.hh"

namespace siwi {

/**
 * Inclusion bitmap: bit i of the result is set iff
 * `masks[i] & ~free == 0` (mask i fits entirely inside @p free).
 *
 * @param n number of masks, at most 64 (one result bit each)
 */
u64 maskInclusionBitmap(u64 free, const u64 *masks, size_t n);

/**
 * Population counts of @p n masks into @p counts. Same flat,
 * branch-free shape as maskInclusionBitmap, for callers that rank
 * fitting candidates by occupancy.
 */
void maskPopcounts(const u64 *masks, size_t n, u8 *counts);

} // namespace siwi

#endif // SIWI_COMMON_MASK_KERNELS_HH
