#include "common/rng.hh"

#include "common/log.hh"

namespace siwi {

namespace {

/** splitmix64 step, used to spread user seeds over the state space. */
u64
splitmix(u64 &x)
{
    x += 0x9e3779b97f4a7c15ull;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(u64 seed)
{
    u64 s = seed;
    state_ = splitmix(s);
    if (state_ == 0)
        state_ = 0x853c49e6748fea9bull;
}

u64
Rng::next()
{
    u64 x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
}

u64
Rng::below(u64 bound)
{
    siwi_assert(bound != 0, "Rng::below(0)");
    // Rejection-free modulo is fine here: bias is irrelevant for
    // workload generation and tie-breaking.
    return next() % bound;
}

i64
Rng::range(i64 lo, i64 hi)
{
    siwi_assert(lo <= hi, "Rng::range: lo > hi");
    return lo + i64(below(u64(hi - lo) + 1));
}

float
Rng::uniform()
{
    return float(next() >> 40) / float(1 << 24);
}

float
Rng::uniform(float lo, float hi)
{
    return lo + (hi - lo) * uniform();
}

} // namespace siwi
