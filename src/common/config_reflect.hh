/**
 * @file
 * Reflection-style field tables for configuration structs.
 *
 * The statsU64Fields() pattern (core/stats_io.hh) generalized to
 * u32, bool and enum fields: a config struct declares one table of
 * ConfigField rows, and that single table drives
 *
 *   - JSON serialization   (configToJson)
 *   - strict JSON parsing  (configApplyJson — unknown keys, type
 *                           mismatches and bad enum names are
 *                           errors that name the offending key)
 *   - "key=value" parsing  (configApplyKeyValue — the CLI --set
 *                           path and the Override machinery)
 *   - equality             (configEqual, behind operator==)
 *   - a self-describing    (configSchema — key, type, default,
 *     schema dump           enum values, one-line doc)
 *
 * A field that is not in the table does not exist as far as spec
 * files, machine files, result artifacts and config equality are
 * concerned, so every new knob must be added to its table — the
 * round-trip tests enumerate the table and keep it honest.
 */

#ifndef SIWI_COMMON_CONFIG_REFLECT_HH
#define SIWI_COMMON_CONFIG_REFLECT_HH

#include <span>
#include <string>
#include <string_view>

#include "common/json.hh"
#include "common/types.hh"

namespace siwi {

/** Value shape of one config field. */
enum class ConfigFieldType { U32, Bool, Enum };

/**
 * One field of a config struct @p Cfg. All access goes through a
 * numeric view (u64): bools are 0/1, enums are their underlying
 * index into @p values (which lists the canonical names in enum
 * order). The accessors are capture-less lambdas in the tables, so
 * plain function pointers suffice.
 */
template <typename Cfg>
struct ConfigField
{
    const char *key;      //!< JSON / key=value name
    ConfigFieldType type;
    const char *doc;      //!< one-line schema description
    u64 (*get)(const Cfg &);
    void (*set)(Cfg &, u64);
    /** Enum fields only: canonical names, index == enum value. */
    std::span<const char *const> values;
};

/** Case-insensitive ASCII string comparison (enum name lookup). */
inline bool
configNameEquals(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        char ca = a[i], cb = b[i];
        if (ca >= 'A' && ca <= 'Z')
            ca = char(ca - 'A' + 'a');
        if (cb >= 'A' && cb <= 'Z')
            cb = char(cb - 'A' + 'a');
        if (ca != cb)
            return false;
    }
    return true;
}

namespace detail_config {

template <typename Cfg>
const ConfigField<Cfg> *
findField(std::span<const ConfigField<Cfg>> fields,
          std::string_view key)
{
    for (const ConfigField<Cfg> &f : fields) {
        if (key == f.key)
            return &f;
    }
    return nullptr;
}

/** "a | b | c" list of an enum field's names, for diagnostics. */
template <typename Cfg>
std::string
valueList(const ConfigField<Cfg> &f)
{
    std::string out;
    for (const char *v : f.values) {
        if (!out.empty())
            out += " | ";
        out += v;
    }
    return out;
}

/** Resolve an enum name to its index; false when unknown. */
template <typename Cfg>
bool
enumIndex(const ConfigField<Cfg> &f, std::string_view name,
          u64 *out)
{
    for (size_t i = 0; i < f.values.size(); ++i) {
        if (configNameEquals(name, f.values[i])) {
            *out = u64(i);
            return true;
        }
    }
    return false;
}

template <typename Cfg>
bool
setFromJson(const ConfigField<Cfg> &f, const Json &v, Cfg *c,
            std::string *err)
{
    switch (f.type) {
      case ConfigFieldType::U32:
        if (!v.isInt() || v.integer() < 0 ||
            u64(v.integer()) > u64(0xffffffffu)) {
            if (err)
                *err = std::string("config key '") + f.key +
                       "' needs an unsigned integer";
            return false;
        }
        f.set(*c, u64(v.integer()));
        return true;
      case ConfigFieldType::Bool:
        if (!v.isBool()) {
            if (err)
                *err = std::string("config key '") + f.key +
                       "' needs true or false";
            return false;
        }
        f.set(*c, v.boolean() ? 1 : 0);
        return true;
      case ConfigFieldType::Enum: {
        if (!v.isString()) {
            if (err)
                *err = std::string("config key '") + f.key +
                       "' needs one of: " + valueList(f);
            return false;
        }
        u64 idx = 0;
        if (!enumIndex(f, v.str(), &idx)) {
            if (err)
                *err = std::string("config key '") + f.key +
                       "': unknown value '" + v.str() +
                       "' (expected " + valueList(f) + ")";
            return false;
        }
        f.set(*c, idx);
        return true;
      }
    }
    return false; // unreachable
}

} // namespace detail_config

/** Serialize every table field of @p c, in table order. */
template <typename Cfg>
Json
configToJson(const Cfg &c, std::span<const ConfigField<Cfg>> fields)
{
    Json j = Json::object();
    for (const ConfigField<Cfg> &f : fields) {
        switch (f.type) {
          case ConfigFieldType::U32:
            j.set(f.key, Json(f.get(c)));
            break;
          case ConfigFieldType::Bool:
            j.set(f.key, Json(f.get(c) != 0));
            break;
          case ConfigFieldType::Enum:
            j.set(f.key, Json(f.values[size_t(f.get(c))]));
            break;
        }
    }
    return j;
}

/**
 * Apply the members of JSON object @p j onto @p c. Keys may be any
 * subset of the table (a "set" block mutates a base config; a full
 * configToJson() dump rebuilds one), but an unknown key, a type
 * mismatch or a bad enum name is a strict error naming the key.
 * @p c is only modified on success.
 */
template <typename Cfg>
bool
configApplyJson(const Json &j,
                std::span<const ConfigField<Cfg>> fields, Cfg *c,
                std::string *err)
{
    if (!j.isObject()) {
        if (err)
            *err = "config: expected a JSON object";
        return false;
    }
    Cfg tmp = *c;
    for (const Json::Member &m : j.obj()) {
        const ConfigField<Cfg> *f =
            detail_config::findField(fields, m.first);
        if (!f) {
            if (err)
                *err = "unknown config key '" + m.first + "'";
            return false;
        }
        if (!detail_config::setFromJson(*f, m.second, &tmp, err))
            return false;
    }
    *c = tmp;
    return true;
}

/**
 * Apply one "key=value" mutation onto @p c (the --set / Override
 * path). Malformed input ("missing=", "=value", no '='), unknown
 * keys and unparseable values are errors naming the problem.
 */
template <typename Cfg>
bool
configApplyKeyValue(std::string_view kv,
                    std::span<const ConfigField<Cfg>> fields,
                    Cfg *c, std::string *err)
{
    size_t eq = kv.find('=');
    if (eq == std::string_view::npos) {
        if (err)
            *err = "expected key=value, got '" + std::string(kv) +
                   "'";
        return false;
    }
    std::string_view key = kv.substr(0, eq);
    std::string_view val = kv.substr(eq + 1);
    if (key.empty()) {
        if (err)
            *err = "missing key in '" + std::string(kv) + "'";
        return false;
    }
    const ConfigField<Cfg> *f =
        detail_config::findField(fields, key);
    if (!f) {
        if (err)
            *err = "unknown config key '" + std::string(key) + "'";
        return false;
    }
    switch (f->type) {
      case ConfigFieldType::U32: {
        u64 n = 0;
        bool ok = !val.empty() && val.size() <= 10;
        for (char ch : val) {
            if (ch < '0' || ch > '9') {
                ok = false;
                break;
            }
            n = n * 10 + u64(ch - '0');
        }
        if (!ok || n > u64(0xffffffffu)) {
            if (err)
                *err = std::string("config key '") + f->key +
                       "' needs an unsigned integer, got '" +
                       std::string(val) + "'";
            return false;
        }
        f->set(*c, n);
        return true;
      }
      case ConfigFieldType::Bool:
        if (configNameEquals(val, "true") ||
            configNameEquals(val, "1")) {
            f->set(*c, 1);
            return true;
        }
        if (configNameEquals(val, "false") ||
            configNameEquals(val, "0")) {
            f->set(*c, 0);
            return true;
        }
        if (err)
            *err = std::string("config key '") + f->key +
                   "' needs true or false, got '" +
                   std::string(val) + "'";
        return false;
      case ConfigFieldType::Enum: {
        u64 idx = 0;
        if (!detail_config::enumIndex(*f, val, &idx)) {
            if (err)
                *err = std::string("config key '") + f->key +
                       "': unknown value '" + std::string(val) +
                       "' (expected " +
                       detail_config::valueList(*f) + ")";
            return false;
        }
        f->set(*c, idx);
        return true;
      }
    }
    return false; // unreachable
}

/** Field-wise equality over the table. */
template <typename Cfg>
bool
configEqual(const Cfg &a, const Cfg &b,
            std::span<const ConfigField<Cfg>> fields)
{
    for (const ConfigField<Cfg> &f : fields) {
        if (f.get(a) != f.get(b))
            return false;
    }
    return true;
}

/**
 * Self-describing schema: one entry per field with key, type,
 * default (taken from @p defaults), enum values and doc line.
 * docs/CONFIG.md is generated from this dump.
 */
template <typename Cfg>
Json
configSchema(const Cfg &defaults,
             std::span<const ConfigField<Cfg>> fields)
{
    Json arr = Json::array();
    for (const ConfigField<Cfg> &f : fields) {
        Json e = Json::object();
        e.set("key", Json(f.key));
        switch (f.type) {
          case ConfigFieldType::U32:
            e.set("type", Json("u32"));
            e.set("default", Json(f.get(defaults)));
            break;
          case ConfigFieldType::Bool:
            e.set("type", Json("bool"));
            e.set("default", Json(f.get(defaults) != 0));
            break;
          case ConfigFieldType::Enum: {
            e.set("type", Json("enum"));
            e.set("default",
                  Json(f.values[size_t(f.get(defaults))]));
            Json vals = Json::array();
            for (const char *v : f.values)
                vals.push(Json(v));
            e.set("values", std::move(vals));
            break;
          }
        }
        e.set("doc", Json(f.doc));
        arr.push(std::move(e));
    }
    return arr;
}

} // namespace siwi

/**
 * Field-definition shorthand for the config tables: capture-less
 * lambdas decay to the function pointers ConfigField stores, and
 * `member` may be any (possibly nested) data-member expression.
 * Shared by every table so accessor fixes cannot diverge.
 */
#define SIWI_CFG_U32(Cfg, key, member, doc) \
    ::siwi::ConfigField<Cfg> \
    { \
        key, ::siwi::ConfigFieldType::U32, doc, \
            [](const Cfg &c) -> ::siwi::u64 { \
                return ::siwi::u64(c.member); \
            }, \
            [](Cfg &c, ::siwi::u64 v) { \
                c.member = decltype(c.member)(v); \
            }, \
            {} \
    }
#define SIWI_CFG_BOOL(Cfg, key, member, doc) \
    ::siwi::ConfigField<Cfg> \
    { \
        key, ::siwi::ConfigFieldType::Bool, doc, \
            [](const Cfg &c) -> ::siwi::u64 { \
                return c.member ? 1 : 0; \
            }, \
            [](Cfg &c, ::siwi::u64 v) { c.member = v != 0; }, {} \
    }
#define SIWI_CFG_ENUM(Cfg, key, member, names, doc) \
    ::siwi::ConfigField<Cfg> \
    { \
        key, ::siwi::ConfigFieldType::Enum, doc, \
            [](const Cfg &c) -> ::siwi::u64 { \
                return ::siwi::u64(c.member); \
            }, \
            [](Cfg &c, ::siwi::u64 v) { \
                c.member = decltype(c.member)(v); \
            }, \
            names \
    }

#endif // SIWI_COMMON_CONFIG_REFLECT_HH
