/**
 * @file
 * Small bit-manipulation helpers used by lane shuffling and the
 * set-associative lookup hardware models.
 */

#ifndef SIWI_COMMON_BITS_HH
#define SIWI_COMMON_BITS_HH

#include <bit>

#include "common/types.hh"

namespace siwi {

/** ceil(log2(x)) for x >= 1. */
constexpr unsigned
log2Ceil(u64 x)
{
    if (x <= 1)
        return 0;
    return 64 - std::countl_zero(x - 1);
}

/** floor(log2(x)) for x >= 1. */
constexpr unsigned
log2Floor(u64 x)
{
    return 63 - std::countl_zero(x);
}

/** True when x is a power of two (and nonzero). */
constexpr bool
isPow2(u64 x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** ceil(a / b). */
constexpr u64
divCeil(u64 a, u64 b)
{
    return (a + b - 1) / b;
}

/**
 * Reverse the low @p width bits of @p x (the paper's bitrev for the
 * XorRev lane-shuffle function; Table 1).
 */
constexpr u64
bitReverse(u64 x, unsigned width)
{
    u64 r = 0;
    for (unsigned i = 0; i < width; ++i) {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    return r;
}

} // namespace siwi

#endif // SIWI_COMMON_BITS_HH
