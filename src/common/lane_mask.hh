/**
 * @file
 * LaneMask: a 64-bit activity mask over the lanes of a warp.
 *
 * Every divergence mechanism in the paper (warp-splits, predication,
 * SWI mask-inclusion lookup) manipulates these masks, so the type is
 * kept header-only and trivially copyable.
 */

#ifndef SIWI_COMMON_LANE_MASK_HH
#define SIWI_COMMON_LANE_MASK_HH

#include <bit>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace siwi {

/**
 * Fixed-width activity mask over up to 64 SIMD lanes.
 *
 * Bit i set means lane i participates. The type is a thin wrapper
 * around u64 providing the set-algebra operations the schedulers and
 * divergence units need (inclusion, disjointness, span, per-wave
 * slicing).
 */
class LaneMask
{
  public:
    constexpr LaneMask() : bits_(0) {}
    constexpr explicit LaneMask(u64 bits) : bits_(bits) {}

    /** Mask with lanes [0, n) set. */
    static constexpr LaneMask
    firstN(unsigned n)
    {
        if (n >= 64)
            return LaneMask(~u64(0));
        return LaneMask((u64(1) << n) - 1);
    }

    /** Mask with only lane i set. */
    static constexpr LaneMask
    lane(unsigned i)
    {
        return LaneMask(u64(1) << i);
    }

    constexpr u64 bits() const { return bits_; }

    constexpr bool test(unsigned i) const { return (bits_ >> i) & 1; }
    constexpr void set(unsigned i) { bits_ |= u64(1) << i; }
    constexpr void clear(unsigned i) { bits_ &= ~(u64(1) << i); }

    constexpr bool any() const { return bits_ != 0; }
    constexpr bool none() const { return bits_ == 0; }
    constexpr unsigned count() const { return std::popcount(bits_); }

    /** True when every lane of this mask is also in @p other. */
    constexpr bool
    subsetOf(LaneMask other) const
    {
        return (bits_ & ~other.bits_) == 0;
    }

    /** True when the two masks share at least one lane. */
    constexpr bool
    intersects(LaneMask other) const
    {
        return (bits_ & other.bits_) != 0;
    }

    /** Index of the lowest set lane; 64 when empty. */
    constexpr unsigned
    first() const
    {
        return std::countr_zero(bits_);
    }

    /** Index of the highest set lane; meaningless when empty. */
    constexpr unsigned
    last() const
    {
        return 63 - std::countl_zero(bits_);
    }

    /**
     * Lanes of this mask falling in wave @p w of width @p width,
     * i.e. lanes [w*width, (w+1)*width).
     */
    constexpr LaneMask
    wave(unsigned w, unsigned width) const
    {
        const LaneMask window(
            firstN(width).bits_ << (u64(w) * width));
        return LaneMask(bits_ & window.bits_);
    }

    constexpr LaneMask operator&(LaneMask o) const
    { return LaneMask(bits_ & o.bits_); }
    constexpr LaneMask operator|(LaneMask o) const
    { return LaneMask(bits_ | o.bits_); }
    constexpr LaneMask operator^(LaneMask o) const
    { return LaneMask(bits_ ^ o.bits_); }
    constexpr LaneMask operator~() const { return LaneMask(~bits_); }
    constexpr LaneMask &operator&=(LaneMask o)
    { bits_ &= o.bits_; return *this; }
    constexpr LaneMask &operator|=(LaneMask o)
    { bits_ |= o.bits_; return *this; }
    constexpr LaneMask &operator^=(LaneMask o)
    { bits_ ^= o.bits_; return *this; }

    constexpr bool operator==(const LaneMask &) const = default;

    /** Render as a lane string, lane 0 leftmost, e.g. "1100". */
    std::string
    toString(unsigned width = 64) const
    {
        std::string s;
        s.reserve(width);
        for (unsigned i = 0; i < width; ++i)
            s.push_back(test(i) ? '1' : '0');
        return s;
    }

  private:
    u64 bits_;
};

} // namespace siwi

#endif // SIWI_COMMON_LANE_MASK_HH
