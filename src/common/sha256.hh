/**
 * @file
 * Minimal SHA-256 (FIPS 180-4), used for content addressing.
 *
 * The serve-layer result cache keys every simulation cell by the
 * SHA-256 of its canonical description (serve/cache_key.hh) and
 * checksums each stored blob against corruption, so the hash must
 * be stable across platforms, builds and endianness — this
 * implementation is pure integer arithmetic over bytes, with no
 * dependency beyond the standard library.
 */

#ifndef SIWI_COMMON_SHA256_HH
#define SIWI_COMMON_SHA256_HH

#include <array>
#include <string>
#include <string_view>

#include "common/types.hh"

namespace siwi {

/** SHA-256 digest of @p data as 32 raw bytes. */
std::array<u8, 32> sha256(std::string_view data);

/** SHA-256 digest of @p data as 64 lowercase hex characters. */
std::string sha256Hex(std::string_view data);

} // namespace siwi

#endif // SIWI_COMMON_SHA256_HH
