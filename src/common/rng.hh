/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Used for workload input generation and for the pseudo-random
 * tie-breaking of the SWI secondary scheduler (section 4 of the
 * paper). A hand-rolled xorshift keeps results identical across
 * platforms and standard libraries.
 */

#ifndef SIWI_COMMON_RNG_HH
#define SIWI_COMMON_RNG_HH

#include "common/types.hh"

namespace siwi {

/**
 * xorshift64* generator with splitmix64 seeding.
 *
 * Deterministic for a given seed on every platform; not
 * cryptographic, which is fine for workloads and tie-breaking.
 */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    u64 next();

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    u64 below(u64 bound);

    /** Uniform integer in [lo, hi] inclusive. */
    i64 range(i64 lo, i64 hi);

    /** Uniform float in [0, 1). */
    float uniform();

    /** Uniform float in [lo, hi). */
    float uniform(float lo, float hi);

  private:
    u64 state_;
};

} // namespace siwi

#endif // SIWI_COMMON_RNG_HH
