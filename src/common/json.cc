#include "common/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace siwi {

double
Json::number() const
{
    if (isInt())
        return double(integer());
    return std::get<double>(v_);
}

const Json *
Json::find(std::string_view key) const
{
    if (!isObject())
        return nullptr;
    for (const Member &m : obj()) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

i64
Json::getInt(std::string_view key, i64 def) const
{
    const Json *j = find(key);
    if (!j)
        return def;
    if (j->isInt())
        return j->integer();
    if (j->isDouble())
        return i64(j->number());
    return def;
}

double
Json::getDouble(std::string_view key, double def) const
{
    const Json *j = find(key);
    return j && j->isNumber() ? j->number() : def;
}

bool
Json::getBool(std::string_view key, bool def) const
{
    const Json *j = find(key);
    return j && j->isBool() ? j->boolean() : def;
}

std::string
Json::getString(std::string_view key, const std::string &def) const
{
    const Json *j = find(key);
    return j && j->isString() ? j->str() : def;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

namespace {

void
writeEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              unsigned(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/** Shortest round-trip double; locale-independent by construction. */
void
writeDouble(std::string &out, double d)
{
    if (!std::isfinite(d)) {
        // JSON has no inf/nan; null is the conventional stand-in.
        out += "null";
        return;
    }
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof(buf), d);
    out.append(buf, res.ptr);
}

} // namespace

namespace detail_json {

void
dumpInto(const Json &j, std::string &out, int indent, int depth)
{
    auto newline = [&](int d) {
        if (indent < 0)
            return;
        out += '\n';
        out.append(size_t(indent) * size_t(d), ' ');
    };

    if (j.isNull()) {
        out += "null";
    } else if (j.isBool()) {
        out += j.boolean() ? "true" : "false";
    } else if (j.isInt()) {
        char buf[24];
        auto res = std::to_chars(buf, buf + sizeof(buf),
                                 j.integer());
        out.append(buf, res.ptr);
    } else if (j.isDouble()) {
        writeDouble(out, j.number());
    } else if (j.isString()) {
        writeEscaped(out, j.str());
    } else if (j.isArray()) {
        const Json::Array &a = j.arr();
        if (a.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (size_t i = 0; i < a.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            dumpInto(a[i], out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
    } else {
        const Json::Object &o = j.obj();
        if (o.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        for (size_t i = 0; i < o.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            writeEscaped(out, o[i].first);
            out += indent < 0 ? ":" : ": ";
            dumpInto(o[i].second, out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
    }
}

} // namespace detail_json

std::string
Json::dump(int indent) const
{
    std::string out;
    detail_json::dumpInto(*this, out, indent, 0);
    return out;
}

bool
Json::writeFile(const std::string &path, int indent,
                std::string *err) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        if (err)
            *err = "cannot write " + path;
        return false;
    }
    out << dump(indent) << "\n";
    out.close(); // flush; catches errors a buffered write hid
    if (!out) {
        if (err)
            *err = "write error on " + path;
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser
{
  public:
    Parser(std::string_view text, std::string *err)
        : text_(text), err_(err)
    {
    }

    Json run()
    {
        Json j = value();
        if (failed_)
            return Json();
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters after JSON value");
            return Json();
        }
        return j;
    }

  private:
    void fail(const std::string &msg)
    {
        if (!failed_ && err_) {
            *err_ = msg + " at offset " + std::to_string(pos_);
        }
        failed_ = true;
    }

    void skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) == word) {
            pos_ += word.size();
            return true;
        }
        return false;
    }

    Json value()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return Json();
        }
        // Bound recursion so corrupt or hostile input yields a
        // parse error instead of a stack overflow.
        if (depth_ >= max_depth) {
            fail("nesting deeper than 100 levels");
            return Json();
        }
        char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return Json(string());
        if (literal("true"))
            return Json(true);
        if (literal("false"))
            return Json(false);
        if (literal("null"))
            return Json(nullptr);
        if (c == '-' || (c >= '0' && c <= '9'))
            return number();
        fail("unexpected character");
        return Json();
    }

    Json object()
    {
        ++pos_; // '{'
        ++depth_;
        Json j = Json::object();
        skipWs();
        if (consume('}')) {
            --depth_;
            return j;
        }
        while (!failed_) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key string");
                break;
            }
            std::string key = string();
            if (failed_)
                break;
            skipWs();
            if (!consume(':')) {
                fail("expected ':' after object key");
                break;
            }
            j.set(std::move(key), value());
            if (failed_)
                break;
            skipWs();
            if (consume(','))
                continue;
            if (consume('}')) {
                --depth_;
                return j;
            }
            fail("expected ',' or '}' in object");
        }
        return Json();
    }

    Json array()
    {
        ++pos_; // '['
        ++depth_;
        Json j = Json::array();
        skipWs();
        if (consume(']')) {
            --depth_;
            return j;
        }
        while (!failed_) {
            j.push(value());
            if (failed_)
                break;
            skipWs();
            if (consume(','))
                continue;
            if (consume(']')) {
                --depth_;
                return j;
            }
            fail("expected ',' or ']' in array");
        }
        return Json();
    }

    std::string string()
    {
        ++pos_; // '"'
        std::string out;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
                return {};
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char e = text_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                unsigned cp = 0;
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return {};
                }
                auto res = std::from_chars(
                    text_.data() + pos_, text_.data() + pos_ + 4,
                    cp, 16);
                if (res.ptr != text_.data() + pos_ + 4) {
                    fail("bad \\u escape");
                    return {};
                }
                pos_ += 4;
                // UTF-8 encode the BMP code point (surrogate
                // pairs are not needed for our ASCII schemas).
                if (cp < 0x80) {
                    out += char(cp);
                } else if (cp < 0x800) {
                    out += char(0xc0 | (cp >> 6));
                    out += char(0x80 | (cp & 0x3f));
                } else {
                    out += char(0xe0 | (cp >> 12));
                    out += char(0x80 | ((cp >> 6) & 0x3f));
                    out += char(0x80 | (cp & 0x3f));
                }
                break;
            }
            default:
                fail("bad escape character");
                return {};
            }
        }
        fail("unterminated string");
        return {};
    }

    Json number()
    {
        size_t start = pos_;
        consume('-');
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9')
            ++pos_;
        bool is_double = false;
        if (consume('.')) {
            is_double = true;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            is_double = true;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        std::string_view tok = text_.substr(start, pos_ - start);
        if (!is_double) {
            i64 n = 0;
            auto res = std::from_chars(tok.data(),
                                       tok.data() + tok.size(), n);
            if (res.ec == std::errc() &&
                res.ptr == tok.data() + tok.size())
                return Json(n);
            // Out-of-range integer: fall through to double.
        }
        double d = 0.0;
        auto res = std::from_chars(tok.data(),
                                   tok.data() + tok.size(), d);
        if (res.ec != std::errc() ||
            res.ptr != tok.data() + tok.size()) {
            fail("malformed number");
            return Json();
        }
        return Json(d);
    }

    static constexpr unsigned max_depth = 100;

    std::string_view text_;
    std::string *err_;
    size_t pos_ = 0;
    unsigned depth_ = 0;
    bool failed_ = false;
};

} // namespace

Json
Json::parse(std::string_view text, std::string *err)
{
    return Parser(text, err).run();
}

Json
Json::parseFile(const std::string &path, std::string *err)
{
    if (err)
        err->clear();
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (err)
            *err = "cannot open " + path;
        return Json();
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string parse_err;
    Json j = Json::parse(buf.str(), &parse_err);
    if (!parse_err.empty()) {
        if (err)
            *err = path + ": " + parse_err;
        return Json();
    }
    return j;
}

} // namespace siwi
