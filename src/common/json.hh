/**
 * @file
 * Minimal JSON value type with a deterministic writer and a strict
 * recursive-descent parser.
 *
 * Written for the experiment-runner results pipeline: objects keep
 * insertion order, integers and doubles are kept apart, and doubles
 * are emitted with std::to_chars shortest round-trip formatting, so
 * serializing the same data always yields byte-identical text
 * regardless of thread count or platform locale. No third-party
 * dependency is involved.
 */

#ifndef SIWI_COMMON_JSON_HH
#define SIWI_COMMON_JSON_HH

#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/types.hh"

namespace siwi {

/**
 * One JSON value: null, bool, integer, double, string, array or
 * object. Objects preserve insertion order (no sorting, no hashing)
 * so that dumps are reproducible.
 */
class Json
{
  public:
    using Array = std::vector<Json>;
    using Member = std::pair<std::string, Json>;
    using Object = std::vector<Member>;

    Json() : v_(nullptr) {}
    Json(std::nullptr_t) : v_(nullptr) {}
    Json(bool b) : v_(b) {}
    Json(i64 n) : v_(n) {}
    Json(u64 n) : v_(i64(n)) {}
    Json(int n) : v_(i64(n)) {}
    Json(unsigned n) : v_(i64(n)) {}
    Json(double d) : v_(d) {}
    Json(const char *s) : v_(std::string(s)) {}
    Json(std::string s) : v_(std::move(s)) {}
    Json(Array a) : v_(std::move(a)) {}
    Json(Object o) : v_(std::move(o)) {}

    static Json array() { return Json(Array{}); }
    static Json object() { return Json(Object{}); }

    bool isNull() const { return holds<std::nullptr_t>(); }
    bool isBool() const { return holds<bool>(); }
    bool isInt() const { return holds<i64>(); }
    bool isDouble() const { return holds<double>(); }
    /** Integer or double. */
    bool isNumber() const { return isInt() || isDouble(); }
    bool isString() const { return holds<std::string>(); }
    bool isArray() const { return holds<Array>(); }
    bool isObject() const { return holds<Object>(); }

    bool boolean() const { return std::get<bool>(v_); }
    i64 integer() const { return std::get<i64>(v_); }
    /** Numeric value widened to double (works for isInt() too). */
    double number() const;
    const std::string &str() const { return std::get<std::string>(v_); }
    const Array &arr() const { return std::get<Array>(v_); }
    Array &arr() { return std::get<Array>(v_); }
    const Object &obj() const { return std::get<Object>(v_); }
    Object &obj() { return std::get<Object>(v_); }

    /** Append to an array value. */
    void push(Json j) { arr().push_back(std::move(j)); }

    /** Append a member to an object value (no duplicate check). */
    void set(std::string key, Json j)
    {
        obj().emplace_back(std::move(key), std::move(j));
    }

    /** Object member lookup; nullptr when absent or not an object. */
    const Json *find(std::string_view key) const;

    /**
     * Typed member accessors with defaults, for tolerant readers.
     * getInt() accepts an integral double (e.g. 3.0) as well.
     */
    i64 getInt(std::string_view key, i64 def = 0) const;
    double getDouble(std::string_view key, double def = 0.0) const;
    bool getBool(std::string_view key, bool def = false) const;
    std::string getString(std::string_view key,
                          const std::string &def = {}) const;

    bool operator==(const Json &rhs) const = default;

    /**
     * Serialize. @p indent < 0 yields compact one-line output;
     * otherwise pretty-print with that many spaces per level.
     */
    std::string dump(int indent = -1) const;

    /**
     * Parse @p text (the whole string must be one JSON value).
     * On failure returns null and stores a diagnostic in @p err.
     */
    static Json parse(std::string_view text, std::string *err);

    /**
     * Read and parse a whole file (the writeFile() companion).
     * On failure returns null and stores a diagnostic — prefixed
     * with the path — in @p err; @p err is cleared on success so
     * callers can test it directly.
     */
    static Json parseFile(const std::string &path,
                          std::string *err);

    /**
     * Write dump(@p indent) plus a trailing newline to @p path,
     * checking the final flush (a buffered write that only fails
     * at close is still reported).
     * @return false and set @p err on any I/O failure.
     */
    bool writeFile(const std::string &path, int indent = 2,
                   std::string *err = nullptr) const;

  private:
    template <typename T> bool holds() const
    {
        return std::holds_alternative<T>(v_);
    }

    std::variant<std::nullptr_t, bool, i64, double, std::string,
                 Array, Object>
        v_;
};

} // namespace siwi

#endif // SIWI_COMMON_JSON_HH
