#include "common/mask_kernels.hh"

#include <bit>

#include "common/log.hh"

namespace siwi {

u64
maskInclusionBitmap(u64 free, const u64 *masks, size_t n)
{
    siwi_assert(n <= 64, "inclusion bitmap limited to 64 masks");
    const u64 excluded = ~free;
    u64 bitmap = 0;
    // Flat AND + zero-test per mask, no data-dependent branches:
    // the loop body is one vector compare per lane group under
    // AVX2/NEON autovectorization.
    for (size_t i = 0; i < n; ++i)
        bitmap |= u64((masks[i] & excluded) == 0) << i;
    return bitmap;
}

void
maskPopcounts(const u64 *masks, size_t n, u8 *counts)
{
    for (size_t i = 0; i < n; ++i)
        counts[i] = u8(std::popcount(masks[i]));
}

} // namespace siwi
