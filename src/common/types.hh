/**
 * @file
 * Fundamental scalar types shared by every SBWI module.
 */

#ifndef SIWI_COMMON_TYPES_HH
#define SIWI_COMMON_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace siwi {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Byte address in the simulated global memory space. */
using Addr = u64;

/** Simulation time, in SM core clock cycles. */
using Cycle = u64;

/**
 * Sentinel wake time returned by the next-event estimators
 * (SM::nextWake and the per-component queries it folds) when a
 * component holds no timed state: "never wakes on its own".
 */
constexpr Cycle no_wake = ~Cycle(0);

/** Instruction address: index into a Program's instruction vector. */
using Pc = u32;

/** Sentinel PC used for "no address". */
constexpr Pc invalid_pc = 0xffffffffu;

/** Architectural register index (r0..r63). */
using RegIdx = u8;

/** Number of architectural registers per thread. */
constexpr unsigned num_arch_regs = 64;

/** Hardware warp slot identifier within an SM. */
using WarpId = u16;

/** Lane index within a warp (0..warp_width-1). */
using LaneId = u8;

/** Maximum warp width supported by LaneMask. */
constexpr unsigned max_warp_width = 64;

} // namespace siwi

#endif // SIWI_COMMON_TYPES_HH
