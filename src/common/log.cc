#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace siwi {

namespace {
bool quiet_flag = false;
}

void
setLogQuiet(bool quiet)
{
    quiet_flag = quiet;
}

bool
logQuiet()
{
    return quiet_flag;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s:%d: %s\n", file, line, msg.c_str());
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!quiet_flag)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!quiet_flag)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace siwi
