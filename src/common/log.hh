/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic() is for internal simulator bugs (aborts); fatal() is for
 * user-caused conditions such as malformed kernels (exits); warn()
 * and inform() report without stopping.
 */

#ifndef SIWI_COMMON_LOG_HH
#define SIWI_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace siwi {

/** Internal: report and abort. Use via the panic() macro. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
/** Internal: report and exit(1). Use via the fatal() macro. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
/** Internal: print a warning. Use via the warn() macro. */
void warnImpl(const std::string &msg);
/** Internal: print an informational message. Use via inform(). */
void informImpl(const std::string &msg);

/** Whether warn()/inform() output is printed (tests silence it). */
void setLogQuiet(bool quiet);
bool logQuiet();

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
formatAll(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail
} // namespace siwi

/** Abort with a message: something that should never happen happened. */
#define panic(...) \
    ::siwi::panicImpl(__FILE__, __LINE__, \
                      ::siwi::detail::formatAll(__VA_ARGS__))

/** Exit with a message: the user asked for something unsupported. */
#define fatal(...) \
    ::siwi::fatalImpl(__FILE__, __LINE__, \
                      ::siwi::detail::formatAll(__VA_ARGS__))

/** Non-fatal warning. */
#define warn(...) \
    ::siwi::warnImpl(::siwi::detail::formatAll(__VA_ARGS__))

/** Informational message. */
#define inform(...) \
    ::siwi::informImpl(::siwi::detail::formatAll(__VA_ARGS__))

/** panic() unless @p cond holds. */
#define siwi_assert(cond, ...) \
    do { \
        if (!(cond)) \
            panic("assertion failed: " #cond " ", \
                  ::siwi::detail::formatAll(__VA_ARGS__)); \
    } while (0)

#endif // SIWI_COMMON_LOG_HH
